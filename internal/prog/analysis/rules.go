package analysis

import (
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis/absint"
)

// This file is the exported algebraic rule table. Each Rule carries a
// unique name, the opcodes it fires on, a human-readable semantics
// justification (the Reason strings the lints print), and a matcher
// over the abstract Subject interface. The same table drives three
// consumers:
//
//   - the simplifier/canonicalizer (applyOneRewrite → simplifyNode),
//   - the lint pass (LintPass reports what a rule would rewrite),
//   - the equality-saturation engine (internal/eqsat matches rules
//     against e-classes instead of program nodes).
//
// Rules are DESTRUCTIVE in the simplifier (the node is replaced) and
// ADDITIVE in eqsat (the matched class is unioned with the result), so
// every rule must be a true equivalence under the exact evalOp
// semantics — see the soundness notes at the top of simplify.go.
//
// Every rule is written as an explicit composite literal with a
// literal Name string: cmd/repolint statically checks that no two
// Rule literals share a Name, which is only possible because none are
// built by loops or constructors.

// Ref identifies an operand as seen through a Subject: a program node
// index for the simplifier/lints, an e-class id for eqsat. Two equal
// Refs always denote equal values (same node, or same e-class).
type Ref = int32

// ActionKind classifies a rule's replacement.
type ActionKind uint8

// Replacement kinds. ActNone marks "rule did not match".
const (
	ActNone  ActionKind = iota
	ActConst            // the subject equals the constant Val
	ActRef              // the subject equals the existing operand Ref
)

// Action is a rule's verdict on one subject. For ActRef the target is
// always a descendant of the subject (an argument or an argument's
// argument), so destructive application cannot create a cycle.
type Action struct {
	Kind ActionKind
	Val  uint64
	Ref  Ref
}

// Subject is one candidate node (or e-class member) a rule inspects.
// Implementations: progSubject in this package, the e-graph adapter in
// internal/eqsat.
type Subject interface {
	// Op is the subject's opcode; always one of the rule's Ops.
	Op() prog.Op
	// Arg returns the k-th operand (k < Op().Arity()).
	Arg(k int) Ref
	// Const resolves r to a constant value when its value is known.
	Const(r Ref) (uint64, bool)
	// ArgOf reports whether r is (or, for e-classes, contains) an
	// application of op, returning that application's first operand.
	ArgOf(r Ref, op prog.Op) (Ref, bool)
	// Fact returns the abstract value of r (known bits and ranges,
	// see internal/prog/analysis/absint) when the host tracks facts;
	// ok=false means nothing is known (treat as Top). Facts presented
	// here MUST be universally sound — derived with all inputs
	// unconstrained — because rules fire for every input vector.
	// Suite-derived facts are reserved for the search pruner.
	Fact(r Ref) (absint.Value, bool)
}

// Rule is one named algebraic rewrite.
type Rule struct {
	// Name uniquely identifies the rule (checked by cmd/repolint).
	Name string
	// Ops lists the opcodes the rule can fire on; the dispatch index
	// only presents subjects with these opcodes to Match.
	Ops []prog.Op
	// Reason is the semantics justification, printed by the lints.
	Reason string
	// Match inspects the subject and returns the replacement, or an
	// ActNone Action when the rule does not apply.
	Match func(s Subject) Action
}

func replaceWith(r Ref) Action     { return Action{Kind: ActRef, Ref: r} }
func replaceConst(v uint64) Action { return Action{Kind: ActConst, Val: v} }

// sameArgs reports whether both operands of a binary subject are the
// same Ref (and therefore the same value).
func sameArgs(s Subject) (Ref, bool) {
	a := s.Arg(0)
	return a, a == s.Arg(1)
}

// constArg1 matches a binary subject whose second operand is constant
// and first is not, returning (first operand, constant).
func constArg1(s Subject) (Ref, uint64, bool) {
	c, ok := s.Const(s.Arg(1))
	if !ok {
		return 0, 0, false
	}
	if _, aConst := s.Const(s.Arg(0)); aConst {
		return 0, 0, false // both constant: folding's job, not ours
	}
	return s.Arg(0), c, true
}

// constArg0 is constArg1 mirrored: first operand constant, second not.
func constArg0(s Subject) (Ref, uint64, bool) {
	c, ok := s.Const(s.Arg(0))
	if !ok {
		return 0, 0, false
	}
	if _, bConst := s.Const(s.Arg(1)); bConst {
		return 0, 0, false
	}
	return s.Arg(1), c, true
}

// constEither matches a commutative binary subject with exactly one
// constant operand on either side, returning (the other operand,
// constant). This encodes the old simplifier's "normalize the constant
// to the right" step for the commutative opcodes.
func constEither(s Subject) (Ref, uint64, bool) {
	if x, c, ok := constArg1(s); ok {
		return x, c, ok
	}
	return constArg0(s)
}

// isZext32 reports whether r is an application of an opcode whose
// result is already zero-extended to 32 bits.
func isZext32(s Subject, r Ref) bool {
	for _, op := range []prog.Op{
		prog.OpAdd32, prog.OpSub32, prog.OpMul32, prog.OpAnd32,
		prog.OpOr32, prog.OpXor32, prog.OpShl32, prog.OpShr32,
		prog.OpSar32, prog.OpNot32, prog.OpNeg32,
		prog.OpZext8, prog.OpZext16,
	} {
		if _, ok := s.ArgOf(r, op); ok {
			return true
		}
	}
	return false
}

// Rules is the algebraic rule table, in application-precedence order:
// equal-argument identities first, then constant-operand rules with
// the constant on the right (or on either side of a commutative op),
// then constant-first-operand rules, then the unary rules. RulesFor
// preserves this order per opcode, so the simplifier's historical
// precedence is unchanged.
var Rules = []Rule{
	// ---- equal arguments -------------------------------------------------
	// These hold for every value of the shared argument, including the
	// division edge cases (x % x is zero both when x == 0, by the trap
	// rule, and otherwise).
	{Name: "and-self", Ops: []prog.Op{prog.OpAnd, prog.OpMAnd}, Reason: "x & x = x",
		Match: func(s Subject) Action {
			if a, ok := sameArgs(s); ok {
				return replaceWith(a)
			}
			return Action{}
		}},
	{Name: "or-self", Ops: []prog.Op{prog.OpOr, prog.OpMOr}, Reason: "x | x = x",
		Match: func(s Subject) Action {
			if a, ok := sameArgs(s); ok {
				return replaceWith(a)
			}
			return Action{}
		}},
	{Name: "xor-self", Ops: []prog.Op{prog.OpXor, prog.OpMXor}, Reason: "x ^ x = 0",
		Match: func(s Subject) Action {
			if _, ok := sameArgs(s); ok {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "xorl-self", Ops: []prog.Op{prog.OpXor32}, Reason: "xorl(x, x) = 0",
		Match: func(s Subject) Action {
			if _, ok := sameArgs(s); ok {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "sub-self", Ops: []prog.Op{prog.OpSub}, Reason: "x - x = 0",
		Match: func(s Subject) Action {
			if _, ok := sameArgs(s); ok {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "subl-self", Ops: []prog.Op{prog.OpSub32}, Reason: "subl(x, x) = 0",
		Match: func(s Subject) Action {
			if _, ok := sameArgs(s); ok {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "eq-self", Ops: []prog.Op{prog.OpEq}, Reason: "x == x is 1",
		Match: func(s Subject) Action {
			if _, ok := sameArgs(s); ok {
				return replaceConst(1)
			}
			return Action{}
		}},
	{Name: "lt-self", Ops: []prog.Op{prog.OpUlt, prog.OpSlt}, Reason: "x < x is 0",
		Match: func(s Subject) Action {
			if _, ok := sameArgs(s); ok {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "rem-self", Ops: []prog.Op{prog.OpRemU, prog.OpRemS}, Reason: "x % x = 0 (incl. x = 0)",
		Match: func(s Subject) Action {
			if _, ok := sameArgs(s); ok {
				return replaceConst(0)
			}
			return Action{}
		}},

	// ---- one constant operand (right, or either side when commutative) --
	{Name: "and-zero", Ops: []prog.Op{prog.OpAnd, prog.OpMAnd}, Reason: "x & 0 = 0",
		Match: func(s Subject) Action {
			if _, c, ok := constEither(s); ok && c == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "and-ones", Ops: []prog.Op{prog.OpAnd, prog.OpMAnd}, Reason: "x & ~0 = x",
		Match: func(s Subject) Action {
			if x, c, ok := constEither(s); ok && c == ^uint64(0) {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "or-zero", Ops: []prog.Op{prog.OpOr, prog.OpMOr}, Reason: "x | 0 = x",
		Match: func(s Subject) Action {
			if x, c, ok := constEither(s); ok && c == 0 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "or-ones", Ops: []prog.Op{prog.OpOr, prog.OpMOr}, Reason: "x | ~0 = ~0",
		Match: func(s Subject) Action {
			if _, c, ok := constEither(s); ok && c == ^uint64(0) {
				return replaceConst(^uint64(0))
			}
			return Action{}
		}},
	{Name: "xor-zero", Ops: []prog.Op{prog.OpXor, prog.OpMXor}, Reason: "x ^ 0 = x",
		Match: func(s Subject) Action {
			if x, c, ok := constEither(s); ok && c == 0 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "add-zero", Ops: []prog.Op{prog.OpAdd}, Reason: "x + 0 = x",
		Match: func(s Subject) Action {
			if x, c, ok := constEither(s); ok && c == 0 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "sub-zero", Ops: []prog.Op{prog.OpSub}, Reason: "x - 0 = x",
		Match: func(s Subject) Action {
			if x, c, ok := constArg1(s); ok && c == 0 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "mul-zero", Ops: []prog.Op{prog.OpMul}, Reason: "x * 0 = 0",
		Match: func(s Subject) Action {
			if _, c, ok := constEither(s); ok && c == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "mul-one", Ops: []prog.Op{prog.OpMul}, Reason: "x * 1 = x",
		Match: func(s Subject) Action {
			if x, c, ok := constEither(s); ok && c == 1 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "div-zero", Ops: []prog.Op{prog.OpDivU, prog.OpDivS}, Reason: "x / 0 = 0 (trap rule)",
		Match: func(s Subject) Action {
			if _, c, ok := constArg1(s); ok && c == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "div-one", Ops: []prog.Op{prog.OpDivU, prog.OpDivS}, Reason: "x / 1 = x",
		Match: func(s Subject) Action {
			if x, c, ok := constArg1(s); ok && c == 1 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "remu-small", Ops: []prog.Op{prog.OpRemU}, Reason: "x % c = 0 for c in {0, 1}",
		Match: func(s Subject) Action {
			if _, c, ok := constArg1(s); ok && (c == 0 || c == 1) {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "rems-small", Ops: []prog.Op{prog.OpRemS}, Reason: "x rem c = 0 for c in {0, 1, -1}",
		Match: func(s Subject) Action {
			if _, c, ok := constArg1(s); ok && (c == 0 || c == 1 || c == ^uint64(0)) {
				return replaceConst(0)
			}
			return Action{}
		}},
	// x86 count masking: shifting by any multiple of 64 (including 64
	// itself) is the identity, never zero.
	{Name: "shift-identity", Ops: []prog.Op{prog.OpShl, prog.OpShr, prog.OpSar, prog.OpRol, prog.OpRor},
		Reason: "shift count masks to 0 (b & 63 == 0): identity",
		Match: func(s Subject) Action {
			if x, c, ok := constArg1(s); ok && c&63 == 0 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "andl-zero", Ops: []prog.Op{prog.OpAnd32}, Reason: "andl(x, 0) = 0",
		Match: func(s Subject) Action {
			if _, c, ok := constEither(s); ok && uint32(c) == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "mull-zero", Ops: []prog.Op{prog.OpMul32}, Reason: "mull(x, 0) = 0",
		Match: func(s Subject) Action {
			if _, c, ok := constEither(s); ok && uint32(c) == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "orl-ones", Ops: []prog.Op{prog.OpOr32}, Reason: "orl(x, ~0) = 0xffffffff",
		Match: func(s Subject) Action {
			if _, c, ok := constEither(s); ok && uint32(c) == 0xffffffff {
				return replaceConst(0xffffffff)
			}
			return Action{}
		}},
	{Name: "ult-zero", Ops: []prog.Op{prog.OpUlt}, Reason: "x <u 0 is 0",
		Match: func(s Subject) Action {
			if _, c, ok := constArg1(s); ok && c == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "slt-min", Ops: []prog.Op{prog.OpSlt}, Reason: "x <s MinInt64 is 0",
		Match: func(s Subject) Action {
			if _, c, ok := constArg1(s); ok && int64(c) == -1<<63 {
				return replaceConst(0)
			}
			return Action{}
		}},

	// ---- constant first operand ------------------------------------------
	{Name: "shift-of-zero", Ops: []prog.Op{prog.OpShl, prog.OpShr, prog.OpRol, prog.OpRor},
		Reason: "0 shifted/rotated is 0",
		Match: func(s Subject) Action {
			if _, c, ok := constArg0(s); ok && c == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "sar-of-zero", Ops: []prog.Op{prog.OpSar}, Reason: "sar of 0 is 0",
		Match: func(s Subject) Action {
			if _, c, ok := constArg0(s); ok && c == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "sar-of-ones", Ops: []prog.Op{prog.OpSar}, Reason: "sar of ~0 is ~0",
		Match: func(s Subject) Action {
			if _, c, ok := constArg0(s); ok && c == ^uint64(0) {
				return replaceConst(^uint64(0))
			}
			return Action{}
		}},
	{Name: "ult-of-max", Ops: []prog.Op{prog.OpUlt}, Reason: "~0 <u x is 0",
		Match: func(s Subject) Action {
			if _, c, ok := constArg0(s); ok && c == ^uint64(0) {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "slt-of-max", Ops: []prog.Op{prog.OpSlt}, Reason: "MaxInt64 <s x is 0",
		Match: func(s Subject) Action {
			if _, c, ok := constArg0(s); ok && int64(c) == 1<<63-1 {
				return replaceConst(0)
			}
			return Action{}
		}},
	{Name: "zero-divided", Ops: []prog.Op{prog.OpDivU, prog.OpDivS, prog.OpRemU, prog.OpRemS},
		Reason: "0 div/rem x is 0 (incl. x = 0)",
		Match: func(s Subject) Action {
			if _, c, ok := constArg0(s); ok && c == 0 {
				return replaceConst(0)
			}
			return Action{}
		}},

	// ---- unary: involutions ----------------------------------------------
	{Name: "not-involution", Ops: []prog.Op{prog.OpNot}, Reason: "notq is an involution",
		Match: func(s Subject) Action {
			if inner, ok := s.ArgOf(s.Arg(0), prog.OpNot); ok {
				return replaceWith(inner)
			}
			return Action{}
		}},
	{Name: "neg-involution", Ops: []prog.Op{prog.OpNeg}, Reason: "negq is an involution",
		Match: func(s Subject) Action {
			if inner, ok := s.ArgOf(s.Arg(0), prog.OpNeg); ok {
				return replaceWith(inner)
			}
			return Action{}
		}},
	{Name: "bswap-involution", Ops: []prog.Op{prog.OpBswap}, Reason: "bswapq is an involution",
		Match: func(s Subject) Action {
			if inner, ok := s.ArgOf(s.Arg(0), prog.OpBswap); ok {
				return replaceWith(inner)
			}
			return Action{}
		}},
	{Name: "mnot-involution", Ops: []prog.Op{prog.OpMNot}, Reason: "not is an involution",
		Match: func(s Subject) Action {
			if inner, ok := s.ArgOf(s.Arg(0), prog.OpMNot); ok {
				return replaceWith(inner)
			}
			return Action{}
		}},

	// ---- unary: idempotent extensions ------------------------------------
	{Name: "sextb-idem", Ops: []prog.Op{prog.OpSext8}, Reason: "sextbq is idempotent",
		Match: func(s Subject) Action {
			if _, ok := s.ArgOf(s.Arg(0), prog.OpSext8); ok {
				return replaceWith(s.Arg(0))
			}
			return Action{}
		}},
	{Name: "sextw-idem", Ops: []prog.Op{prog.OpSext16}, Reason: "sextwq is idempotent",
		Match: func(s Subject) Action {
			if _, ok := s.ArgOf(s.Arg(0), prog.OpSext16); ok {
				return replaceWith(s.Arg(0))
			}
			return Action{}
		}},
	{Name: "sextl-idem", Ops: []prog.Op{prog.OpSext32}, Reason: "sextlq is idempotent",
		Match: func(s Subject) Action {
			if _, ok := s.ArgOf(s.Arg(0), prog.OpSext32); ok {
				return replaceWith(s.Arg(0))
			}
			return Action{}
		}},
	{Name: "zextb-idem", Ops: []prog.Op{prog.OpZext8}, Reason: "zextbq is idempotent",
		Match: func(s Subject) Action {
			if _, ok := s.ArgOf(s.Arg(0), prog.OpZext8); ok {
				return replaceWith(s.Arg(0))
			}
			return Action{}
		}},
	{Name: "zextw-idem", Ops: []prog.Op{prog.OpZext16}, Reason: "zextwq is idempotent",
		Match: func(s Subject) Action {
			if _, ok := s.ArgOf(s.Arg(0), prog.OpZext16); ok {
				return replaceWith(s.Arg(0))
			}
			return Action{}
		}},
	{Name: "zextl-idem", Ops: []prog.Op{prog.OpZext32}, Reason: "zextlq is idempotent",
		Match: func(s Subject) Action {
			if _, ok := s.ArgOf(s.Arg(0), prog.OpZext32); ok {
				return replaceWith(s.Arg(0))
			}
			return Action{}
		}},

	// zextlq of a value that is already zero-extended to 32 bits is the
	// identity: every 32-bit operation zero-extends its result.
	{Name: "zextl-of-32bit", Ops: []prog.Op{prog.OpZext32}, Reason: "zextlq of a zero-extended value",
		Match: func(s Subject) Action {
			if isZext32(s, s.Arg(0)) {
				return replaceWith(s.Arg(0))
			}
			return Action{}
		}},

	// ---- fact-conditioned rules (abstract interpretation) ----------------
	// These fire on side conditions proved by the known-bits/interval
	// analysis (Subject.Fact). The facts are computed with all inputs
	// unconstrained, so every rewrite below holds for every input
	// vector — same soundness bar as the syntactic rules above.
	{Name: "and-redundant-mask", Ops: []prog.Op{prog.OpAnd, prog.OpMAnd},
		Reason: "known bits prove every bit the mask clears is already zero",
		Match: func(s Subject) Action {
			x, c, ok := constEither(s)
			if !ok {
				return Action{}
			}
			if f, ok := s.Fact(x); ok && ^c&^f.B.Zero == 0 {
				return replaceWith(x)
			}
			return Action{}
		}},
	{Name: "ult-decided", Ops: []prog.Op{prog.OpUlt}, Reason: "value ranges decide the unsigned comparison",
		Match: factDecided},
	{Name: "slt-decided", Ops: []prog.Op{prog.OpSlt}, Reason: "value ranges decide the signed comparison",
		Match: factDecided},
	{Name: "eq-decided", Ops: []prog.Op{prog.OpEq}, Reason: "known bits or ranges decide the equality",
		Match: factDecided},
	// Promotion of the old report-only 32-bit masked-shift lint: a
	// 32-bit shift by a count that masks to zero (b & 31 == 0) is
	// zextlq of its operand, and when known bits prove the operand's
	// high half zero, zextlq is the identity — so the whole shift is.
	{Name: "shift32-masked-zero", Ops: []prog.Op{prog.OpShl32, prog.OpShr32, prog.OpSar32},
		Reason: "count masks to 0 and known bits prove the operand fits 32 bits: identity",
		Match: func(s Subject) Action {
			_, c, ok := constArg1(s)
			if !ok || c&31 != 0 {
				return Action{}
			}
			x := s.Arg(0)
			if f, ok := s.Fact(x); ok && f.B.Zero>>32 == 0xffffffff {
				return replaceWith(x)
			}
			return Action{}
		}},
}

// factDecided resolves a comparison through the abstract transfer
// function of its own opcode: when the operand facts pin the result to
// a single value (ranges disjoint, bit conflict, both exact), the
// comparison is that constant. Both-constant operands are left to the
// constant folder, keeping the fold/lint report split clean.
func factDecided(s Subject) Action {
	if _, aConst := s.Const(s.Arg(0)); aConst {
		if _, bConst := s.Const(s.Arg(1)); bConst {
			return Action{}
		}
	}
	fa, oka := s.Fact(s.Arg(0))
	fb, okb := s.Fact(s.Arg(1))
	if !oka || !okb {
		return Action{}
	}
	if v, ok := absint.Transfer(s.Op(), fa, fb).Exact(); ok {
		return replaceConst(v)
	}
	return Action{}
}

// rulesByOp indexes Rules by opcode (an array, not a map, so dispatch
// never depends on map iteration order). Built once at package init
// from the table above; per-op order follows table order.
var rulesByOp = buildRuleIndex()

func buildRuleIndex() [prog.NumOps][]*Rule {
	var idx [prog.NumOps][]*Rule
	for i := range Rules {
		r := &Rules[i]
		for _, op := range r.Ops {
			idx[op] = append(idx[op], r)
		}
	}
	return idx
}

// RulesFor returns the rules applicable to op, in table (precedence)
// order. The returned slice is shared; callers must not mutate it.
func RulesFor(op prog.Op) []*Rule {
	if int(op) >= prog.NumOps {
		return nil
	}
	return rulesByOp[op]
}
