package analysis

import (
	"strings"
	"testing"

	"stochsyn/internal/prog"
)

func mustParse(t *testing.T, expr string, inputs int) *prog.Program {
	t.Helper()
	p, err := prog.Parse(expr, inputs)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return p
}

// Fact-backed lints must fire on programs whose redundancy is only
// provable by the abstract interpretation (known-bits / intervals), and
// each must be actionable: the canonicalizer rewrites it away.
func TestFactLintFindings(t *testing.T) {
	cases := []struct {
		expr   string
		inputs int
		substr string // expected fragment of the finding message
		canon  string // expected canonical form after the rewrite
	}{
		// popcntq(x) ∈ [0, 64]: the mask to 127 keeps every bit that
		// can be set, so the and is redundant.
		{"andq(popcntq(x), 127)", 1, "every bit the mask clears", "popcntq(x)"},
		// popcntq(x) < 65 always: interval-decided comparison.
		{"ultq(popcntq(x), 65)", 1, "ranges decide the unsigned", "1"},
		// sarq(x, 63) ∈ [-1, 0] < 1 always.
		{"sltq(sarq(x, 63), 1)", 1, "ranges decide the signed", "1"},
		// orq(x, 1) has its low bit forced to one; 0 does not.
		{"eqq(orq(x, 1), 0)", 1, "known bits", "0"},
		// The explicit count mask duplicates the hardware's own 6-bit
		// count mask.
		{"shlq(x, andq(x, 63))", 1, "count mask is redundant", "shlq(x, x)"},
		// zextlq(x) provably fits 32 bits, so the masked-to-zero 32-bit
		// shift really is the identity (not merely zextlq).
		{"shll(zextlq(x), 32)", 1, "redundant", "zextlq(x)"},
	}
	for _, tc := range cases {
		p := mustParse(t, tc.expr, tc.inputs)
		rep := Run(p)
		found := false
		for _, f := range rep.Findings {
			if f.Pass == "lint" && strings.Contains(f.Msg, tc.substr) {
				found = true
				if !f.Actionable() {
					t.Errorf("%q: finding %q is not actionable", tc.expr, f)
				}
			}
		}
		if !found {
			t.Errorf("%q: no lint finding containing %q; report: %v",
				tc.expr, tc.substr, rep.Strings())
		}
		if got := Canonicalize(p).String(); got != tc.canon {
			t.Errorf("Canonicalize(%q) = %q, want %q", tc.expr, got, tc.canon)
		}
	}
}

// The unprovable 32-bit masked shift must stay report-only: shll(x, 32)
// on a raw input truncates (it is zextlq, not the identity), so the
// promotion rule must not fire without the high-32-zero fact.
func TestMaskedShiftPromotionNeedsFact(t *testing.T) {
	p := mustParse(t, "shll(x, 32)", 1)
	for _, f := range Run(p).Findings {
		if f.Pass == "lint" && f.Actionable() {
			t.Errorf("shll(x, 32) produced actionable lint %q; must be report-only", f)
		}
	}
	if got := Canonicalize(p).String(); got != "shll(x, 32)" {
		t.Errorf("Canonicalize(shll(x, 32)) = %q; must not rewrite", got)
	}
}

// Reports must come out of Run in the deterministic Sort order: by node
// id (program-level first), then pass, then message.
func TestReportSortDeterministic(t *testing.T) {
	r := Report{Findings: []Finding{
		{Pass: "liveness", Node: 4, Msg: "dead"},
		{Pass: "lint", Node: 2, Msg: "b"},
		{Pass: "fold", Node: 2, Msg: "a"},
		{Pass: "lint", Node: -1, Msg: "program-level"},
		{Pass: "lint", Node: 2, Msg: "a"},
	}}
	r.Sort()
	want := []string{
		"lint: program-level",
		"fold: node 2: a",
		"lint: node 2: a",
		"lint: node 2: b",
		"liveness: node 4: dead",
	}
	got := r.Strings()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %q want %q", i, got[i], want[i])
		}
	}

	// A program with several findings must render identically across
	// repeated runs.
	p := mustParse(t, "andq(popcntq(x), shlq(x, andq(x, 63)))", 1)
	rep := Run(p)
	first := strings.Join(rep.Strings(), "\n")
	for i := 0; i < 5; i++ {
		rep = Run(p)
		if again := strings.Join(rep.Strings(), "\n"); again != first {
			t.Fatalf("report not stable:\n%s\nvs\n%s", first, again)
		}
	}
}
