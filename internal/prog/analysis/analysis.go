// Package analysis is a small static-analysis layer over the dataflow
// programs of internal/prog: a pass framework with concrete passes for
// constant folding, algebraic-identity lints, and liveness, plus a
// semantics-preserving canonicalizer that maps structural variants of
// the same computation to one canonical form with a 64-bit hash.
//
// The layer serves three roles in the system:
//
//   - a correctness gate for the move set: Check wraps the structural
//     invariants and is run after every accepted move when the mutate
//     package's debug checks are on;
//   - an auditor for synthesis results: Run reports the rewrite-level
//     redundancy (foldable constants, identity operations, dead
//     inputs) that a cost-only stochastic search routinely leaves in
//     accepted programs;
//   - a canonicalizer for semantic caching: Canonicalize + Hash give
//     synthd a cache key under which structurally different but
//     semantically identical programs collide.
//
// Every rewrite applied by the canonicalizer must be sound under the
// exact evalOp semantics (x86 count-masked shifts, divide-by-zero
// producing zero, 32-bit ops zero-extending); the rules live in
// simplify.go and are verified by Eval-equivalence tests and a fuzzer.
package analysis

import (
	"fmt"
	"sort"

	"stochsyn/internal/prog"
)

// Severity classifies a finding. The zero value is SevWarn so that
// passes which never set the field keep their historical rendering.
type Severity string

// Severity levels. SevWarn findings are actionable: the reported
// redundancy can be rewritten away (the canonicalizer does exactly
// that). SevInfo findings are report-only: they describe a property of
// the program the rewriter deliberately leaves alone (e.g. a 32-bit
// shift whose count masks to zero, which is zextlq, not the identity).
const (
	SevWarn Severity = "" // actionable; renders untagged for stability
	SevInfo Severity = "info"
)

// Finding is one diagnostic produced by a pass. Node is the index of
// the offending node, or -1 for program-level findings.
type Finding struct {
	Pass     string   // name of the pass that produced the finding
	Node     int32    // node index, -1 when program-level
	Severity Severity // SevWarn (actionable, the default) or SevInfo (report-only)
	Msg      string
}

// String renders the finding as "pass: node N: msg"; report-only
// findings carry the severity tag after the pass name, as in
// "pass[info]: node N: msg".
func (f Finding) String() string {
	pass := f.Pass
	if f.Severity != SevWarn {
		pass += "[" + string(f.Severity) + "]"
	}
	if f.Node < 0 {
		return pass + ": " + f.Msg
	}
	return fmt.Sprintf("%s: node %d: %s", pass, f.Node, f.Msg)
}

// Actionable reports whether the finding calls for a rewrite (SevWarn)
// rather than being informational only.
func (f Finding) Actionable() bool { return f.Severity == SevWarn }

// Report collects the findings of one or more passes.
type Report struct {
	Findings []Finding
}

// Add appends an actionable (SevWarn) finding.
func (r *Report) Add(pass string, node int32, format string, args ...any) {
	r.AddSev(pass, SevWarn, node, format, args...)
}

// AddSev appends a finding with an explicit severity.
func (r *Report) AddSev(pass string, sev Severity, node int32, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Pass: pass, Node: node, Severity: sev, Msg: fmt.Sprintf(format, args...)})
}

// Empty reports whether the report holds no findings.
func (r *Report) Empty() bool { return len(r.Findings) == 0 }

// Sort orders the findings deterministically: by node id (program-
// level findings first), then pass name, then message. Rendered
// reports are thereby diff-stable across runs and refactorings of the
// pass pipeline — synth -lint and the job API both depend on that.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := &r.Findings[i], &r.Findings[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
}

// Strings renders every finding, in pass order.
func (r *Report) Strings() []string {
	out := make([]string, len(r.Findings))
	for i, f := range r.Findings {
		out[i] = f.String()
	}
	return out
}

// Pass is one analysis over a program. Passes are read-only: they
// report findings and must not mutate the program.
type Pass interface {
	Name() string
	Run(p *prog.Program, r *Report)
}

// Passes returns the default pass pipeline: constant folding,
// algebraic-identity lints, and liveness, in that order.
func Passes() []Pass {
	return []Pass{FoldPass{}, LintPass{}, LivenessPass{}}
}

// Run executes the default passes over p and returns the combined
// report, sorted into the deterministic order of Report.Sort. The
// program is not modified.
func Run(p *prog.Program) Report {
	var r Report
	for _, pass := range Passes() {
		pass.Run(p, &r)
	}
	r.Sort()
	return r
}

// Check verifies the structural invariants of p (including the
// stale-operand-slot rule) and returns a descriptive error on the
// first violation. It is the entry point used by the mutate package's
// debug gate after every accepted move.
func Check(p *prog.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return nil
}
