package analysis_test

import (
	"strings"
	"testing"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
)

// build parses an expression over numInputs inputs.
func build(t *testing.T, src string, numInputs int) *prog.Program {
	t.Helper()
	p, err := prog.Parse(src, numInputs)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestRunCleanProgram(t *testing.T) {
	p := build(t, "orq(andq(x, y), andq(notq(x), z))", 3)
	r := analysis.Run(p)
	if !r.Empty() {
		t.Errorf("clean program produced findings: %v", r.Strings())
	}
}

func TestFoldPassReportsConstantNode(t *testing.T) {
	p := build(t, "addq(x, mulq(3, 4))", 1)
	r := analysis.Run(p)
	found := false
	for _, f := range r.Findings {
		if f.Pass == "fold" && strings.Contains(f.Msg, "12") {
			found = true
		}
	}
	if !found {
		t.Errorf("fold pass missed mulq(3, 4) = 12; findings: %v", r.Strings())
	}
}

func TestLintPassReportsIdentities(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of some lint finding
	}{
		{"andq(x, x)", "x & x"},
		{"orq(x, 0)", "x | 0"},
		{"mulq(1, x)", "x * 1"}, // commutative: const on either side
		{"xorq(x, x)", "x ^ x"},
		{"shlq(x, 64)", "identity"}, // count masks to zero
		{"remq(x, x)", "x % x"},
		{"subq(x, 0)", "x - 0"},
		{"idivq(x, 1)", "x / 1"},
	}
	for _, tc := range cases {
		p := build(t, tc.src, 1)
		r := analysis.Run(p)
		found := false
		for _, f := range r.Findings {
			if f.Pass == "lint" && strings.Contains(f.Msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: lint pass missed %q; findings: %v", tc.src, tc.want, r.Strings())
		}
	}
}

func TestLintPass32BitShiftReportOnly(t *testing.T) {
	p := build(t, "shll(x, 32)", 1)
	r := analysis.Run(p)
	found := false
	for _, f := range r.Findings {
		if f.Pass == "lint" && strings.Contains(f.Msg, "zextlq") {
			found = true
		}
	}
	if !found {
		t.Errorf("lint pass missed the 32-bit masked shift; findings: %v", r.Strings())
	}
	// And crucially the canonicalizer must NOT rewrite it to x: the
	// zero-extension is semantically significant.
	c := analysis.Canonicalize(p)
	in := []uint64{0xdeadbeefcafebabe}
	if got, want := c.Output(in), p.Output(in); got != want {
		t.Errorf("canonicalized shll(x, 32) = %#x, want %#x", got, want)
	}
	if c.Output(in) == in[0] {
		t.Error("canonicalizer unsoundly rewrote shll(x, 32) to x")
	}
}

func TestLivenessPassReportsDeadInput(t *testing.T) {
	p := build(t, "notq(x)", 3) // y, z unused
	r := analysis.Run(p)
	dead := 0
	for _, f := range r.Findings {
		if f.Pass == "liveness" && strings.Contains(f.Msg, "dead") {
			dead++
		}
	}
	if dead != 2 {
		t.Errorf("liveness reported %d dead inputs, want 2; findings: %v", dead, r.Strings())
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	p := prog.NewConst(1, 7)
	if err := analysis.Check(p); err != nil {
		t.Fatalf("Check rejected a valid program: %v", err)
	}
	p.Nodes[p.Root].Args[0] = 1 // stale operand slot
	p.Invalidate()
	if err := analysis.Check(p); err == nil {
		t.Error("Check accepted a const node with a stale operand slot")
	}
}

func TestFindingString(t *testing.T) {
	f := analysis.Finding{Pass: "lint", Node: 3, Msg: "x & x = x"}
	if got := f.String(); got != "lint: node 3: x & x = x" {
		t.Errorf("Finding.String() = %q", got)
	}
	g := analysis.Finding{Pass: "liveness", Node: -1, Msg: "whole-program"}
	if got := g.String(); got != "liveness: whole-program" {
		t.Errorf("program-level Finding.String() = %q", got)
	}
}
