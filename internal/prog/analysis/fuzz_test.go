package analysis_test

import (
	"testing"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
)

// FuzzCanonicalize feeds arbitrary expression text through the parser
// (reusing the FuzzParse corpus plumbing from internal/prog) and
// checks the canonicalizer's contract on everything that parses:
// the canonical form is a valid program, Eval-equal to the original on
// a batch of inputs, stable under a second canonicalization
// (idempotence), and hash-stable.
func FuzzCanonicalize(f *testing.F) {
	for _, seed := range []string{
		"x", "addq(x, y)", "a = notq(x); addq(a, a)",
		"orq(andq(x, y), andq(notq(x), z))", "0xdeadbeef", "-1",
		"and(or(x, x), shl(x))", "mulq(in4, in5)",
		"addq(x, 0)", "xorq(x, x)", "shlq(x, 64)", "shll(x, 32)",
		"mulq(addq(1, 2), x)", "divq(x, x)", "iremq(x, -1)",
		"a = andq(x, y); orq(a, andq(y, x))",
		"sarq(0, x)", "zextlq(addl(x, y))", "notq(notq(notq(x)))",
	} {
		f.Add(seed)
	}
	inputs := [][]uint64{
		{0, 0, 0, 0, 0, 0},
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
		{1, 2, 3, 4, 5, 6},
		{0x8000000000000000, 0x7fffffffffffffff, 63, 64, 0xffffffff, 0x100000000},
		{0xdeadbeefcafebabe, 0x0123456789abcdef, 0x5555555555555555, 0xaaaaaaaaaaaaaaaa, 1 << 31, 1 << 32},
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := prog.Parse(src, 6)
		if err != nil {
			return
		}
		c := analysis.Canonicalize(p)
		if err := c.Validate(); err != nil {
			t.Fatalf("canonical form of %q invalid: %v\n  %s", src, err, c)
		}
		for _, in := range inputs {
			if got, want := c.Output(in), p.Output(in); got != want {
				t.Fatalf("canonicalization changed semantics of %q on %#x: got %#x, want %#x\n  c: %s",
					src, in, got, want, c)
			}
		}
		c2 := analysis.Canonicalize(c)
		if !c.Equal(c2) {
			t.Fatalf("canonicalization of %q not idempotent:\n  once:  %s\n  twice: %s", src, c, c2)
		}
		if analysis.Hash(c) != analysis.CanonHash(p) {
			t.Fatalf("hash of canonical form differs from CanonHash for %q", src)
		}
	})
}
