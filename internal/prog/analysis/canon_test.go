package analysis_test

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/mutate"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
	"stochsyn/internal/testcase"
)

// evalEqual checks that two programs agree on a batch of random and
// corner-case input vectors.
func evalEqual(t *testing.T, p, q *prog.Program, numInputs int, label string) {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 17))
	in := make([]uint64, numInputs)
	vecs := [][]uint64{}
	for k := 0; k < numInputs; k++ {
		in[k] = 0
	}
	vecs = append(vecs, append([]uint64(nil), in...))
	for k := 0; k < numInputs; k++ {
		in[k] = ^uint64(0)
	}
	vecs = append(vecs, append([]uint64(nil), in...))
	for r := 0; r < 64; r++ {
		for k := 0; k < numInputs; k++ {
			in[k] = rng.Uint64()
		}
		vecs = append(vecs, append([]uint64(nil), in...))
	}
	for _, v := range vecs {
		if got, want := q.Output(v), p.Output(v); got != want {
			t.Fatalf("%s: output differs on %#x: got %#x, want %#x\n  p: %s\n  q: %s",
				label, v, got, want, p, q)
		}
	}
}

func TestCanonicalizeEquivalencePairs(t *testing.T) {
	// Pairs of structurally different, semantically equal programs
	// that must map to the same canonical form (and hash).
	pairs := []struct {
		a, b string
		n    int
	}{
		{"addq(x, 0)", "x", 1},
		{"andq(x, y)", "andq(y, x)", 2},
		{"addq(1, 2)", "3", 1},
		{"xorq(x, x)", "0", 1},
		{"shlq(x, 64)", "x", 1},
		{"mulq(x, 1)", "orq(x, 0)", 1},
		{"a = notq(x); andq(a, notq(x))", "notq(x)", 1},
		{"subq(addq(x, y), addq(y, x))", "0", 2},
		{"orq(andq(x, y), andq(y, x))", "andq(x, y)", 2},
		{"divq(x, divq(y, 0))", "0", 2}, // y/0 = 0, then x/0 = 0
		{"notq(notq(x))", "x", 1},
		{"zextlq(addl(x, y))", "addl(x, y)", 2},
		{"iremq(x, -1)", "0", 1},
	}
	for _, tc := range pairs {
		a := build(t, tc.a, tc.n)
		b := build(t, tc.b, tc.n)
		ca := analysis.Canonicalize(a)
		cb := analysis.Canonicalize(b)
		if !ca.Equal(cb) {
			t.Errorf("Canonicalize(%q) != Canonicalize(%q):\n  %s\n  %s", tc.a, tc.b, ca, cb)
		}
		if analysis.Hash(ca) != analysis.Hash(cb) {
			t.Errorf("CanonHash(%q) != CanonHash(%q)", tc.a, tc.b)
		}
		evalEqual(t, a, ca, tc.n, tc.a)
		evalEqual(t, b, cb, tc.n, tc.b)
	}
}

func TestCanonicalizeDistinguishesInequivalent(t *testing.T) {
	// Near-miss pairs that the canonicalizer must NOT conflate.
	pairs := []struct {
		a, b string
		n    int
	}{
		{"shll(x, 32)", "x", 1}, // 32-bit shift zero-extends
		{"orl(x, 0)", "x", 1},   // ditto
		{"divq(x, x)", "1", 1},  // x/x is 0 when x == 0
		{"subq(x, y)", "subq(y, x)", 2},
		{"sarq(x, 1)", "shrq(x, 1)", 1},
	}
	for _, tc := range pairs {
		ca := analysis.Canonicalize(build(t, tc.a, tc.n))
		cb := analysis.Canonicalize(build(t, tc.b, tc.n))
		if ca.Equal(cb) {
			t.Errorf("Canonicalize conflated inequivalent %q and %q (both -> %s)", tc.a, tc.b, ca)
		}
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	for _, src := range []string{
		"addq(x, 0)",
		"orq(andq(x, y), andq(notq(x), z))",
		"a = notq(x); andq(a, notq(x))",
		"mulq(addq(x, 1), subq(y, y))",
		"x",
		"42",
	} {
		p := build(t, src, 3)
		c1 := analysis.Canonicalize(p)
		c2 := analysis.Canonicalize(c1)
		if !c1.Equal(c2) {
			t.Errorf("Canonicalize not idempotent on %q:\n  once:  %s\n  twice: %s", src, c1, c2)
		}
	}
}

func TestCanonicalizeValidAndDoesNotMutate(t *testing.T) {
	p := build(t, "addq(mulq(x, 1), xorq(y, y))", 2)
	orig := p.Clone()
	c := analysis.Canonicalize(p)
	if err := c.Validate(); err != nil {
		t.Errorf("canonical form invalid: %v\n  %s", err, c)
	}
	if !p.Equal(orig) {
		t.Error("Canonicalize mutated its input")
	}
	// The canonical form should have shed the identity and the
	// annihilated xor: addq(x, 0) folds no further (x + 0 = x).
	if want := build(t, "x", 2); !c.Equal(analysis.Canonicalize(want)) {
		t.Errorf("canonical form %s, want canonical x", c)
	}
}

func TestHashStructural(t *testing.T) {
	a := build(t, "addq(x, y)", 2)
	b := build(t, "addq(x, y)", 2)
	if analysis.Hash(a) != analysis.Hash(b) {
		t.Error("equal programs hash differently")
	}
	c := build(t, "addq(x, 1)", 2)
	if analysis.Hash(a) == analysis.Hash(c) {
		t.Error("distinct programs collide (suspicious for FNV on 3 nodes)")
	}
}

func TestCanonHashMatchesCanonicalizeHash(t *testing.T) {
	p := build(t, "orq(x, 0)", 1)
	if analysis.CanonHash(p) != analysis.Hash(analysis.Canonicalize(p)) {
		t.Error("CanonHash disagrees with Hash∘Canonicalize")
	}
}

// TestCanonicalizeRandomPrograms drives the mutator to produce random
// well-formed programs in both dialects and checks that the
// canonicalizer is semantics-preserving, idempotent, and produces
// valid programs on all of them.
func TestCanonicalizeRandomPrograms(t *testing.T) {
	suite := testcase.Generate(func(in []uint64) uint64 { return in[0] &^ in[1] },
		2, 8, rand.New(rand.NewPCG(1, 2)))
	for _, set := range []*prog.OpSet{prog.FullSet, prog.ModelSet, prog.BaseSet} {
		m := mutate.New(set, suite, set == prog.ModelSet)
		rng := rand.New(rand.NewPCG(42, uint64(len(set.Ops()))))
		p := prog.NewZero(2)
		for step := 0; step < 400; step++ {
			m.Apply(p, rng)
			if step%10 != 0 {
				continue
			}
			c := analysis.Canonicalize(p)
			if err := c.Validate(); err != nil {
				t.Fatalf("%s step %d: canonical form invalid: %v\n  p: %s\n  c: %s",
					set.Name(), step, err, p, c)
			}
			evalEqual(t, p, c, 2, set.Name()+" random")
			c2 := analysis.Canonicalize(c)
			if !c.Equal(c2) {
				t.Fatalf("%s step %d: not idempotent:\n  once:  %s\n  twice: %s",
					set.Name(), step, c, c2)
			}
		}
	}
}
