package prog

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		src       string
		numInputs int
	}{
		{"x", 1},
		{"0", 1},
		{"-1", 1},
		{"0xdeadbeef", 1},
		{"notq(x)", 1},
		{"addq(x, y)", 2},
		{"orq(andq(x, y), andq(notq(x), z))", 3},
		{"a = notq(x); addq(a, a)", 1},
		{"or(shl(x), x)", 1},
		{"mulq(in4, in5)", 6},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src, tc.numInputs)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Parse(%q) invalid: %v", tc.src, err)
			continue
		}
		// Re-parse the printed form; it must evaluate identically.
		q, err := Parse(p.String(), tc.numInputs)
		if err != nil {
			t.Errorf("re-Parse(%q -> %q): %v", tc.src, p.String(), err)
			continue
		}
		in := make([]uint64, tc.numInputs)
		for i := range in {
			in[i] = uint64(i)*0x9e3779b97f4a7c15 + 3
		}
		if p.Output(in) != q.Output(in) {
			t.Errorf("round trip of %q changed semantics", tc.src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src       string
		numInputs int
		wantSub   string
	}{
		{"", 1, "empty"},
		{"frobq(x)", 1, "unknown operation"},
		{"addq(x)", 1, "takes 2 arguments"},
		{"notq(x, y)", 2, "takes 1 arguments"},
		{"y", 1, "out of range"},
		{"q = 3", 1, "final statement"},
		{"a = 1; a = 2; a", 1, "duplicate binding"},
		{"x = 1; x", 1, "collides with input"},
		{"addq(x,", 1, "missing ')'"},
		{"bogus", 1, "cannot parse"},
		{"addq(x, 99999999999999999999999)", 1, "cannot parse"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src, tc.numInputs)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestParseTooLarge(t *testing.T) {
	// An expression with more than MaxBody live nodes must be
	// rejected.
	expr := "x"
	for i := 0; i < MaxBody+1; i++ {
		expr = "notq(" + expr + ")"
	}
	if _, err := Parse(expr, 1); err == nil {
		t.Error("Parse accepted an over-limit expression")
	}
}

func TestParseUnusedBindingDropped(t *testing.T) {
	p, err := Parse("a = notq(x); b = addq(x, 1); b", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The unused binding a must have been collected.
	if p.BodyLen() != 2 {
		t.Errorf("BodyLen = %d, want 2 (add, const)", p.BodyLen())
	}
}

func TestParseSharingPreserved(t *testing.T) {
	p := MustParse("a = addq(x, 1); mulq(a, a)", 1)
	// Count add nodes: sharing means exactly one.
	adds := 0
	for _, nd := range p.Nodes {
		if nd.Op == OpAdd {
			adds++
		}
	}
	if adds != 1 {
		t.Errorf("found %d add nodes, want 1 (shared)", adds)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("frobq(x)", 1)
}

func TestStringSharesBindings(t *testing.T) {
	p := MustParse("a = notq(x); addq(a, a)", 1)
	s := p.String()
	if !strings.Contains(s, "=") {
		t.Errorf("String() = %q, expected a binding for the shared node", s)
	}
}

func TestFormatConst(t *testing.T) {
	cases := []struct {
		v    uint64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{^uint64(0), "-1"},
		{1024, "1024"},
		{1025, "0x401"},
		{^uint64(0) - 1023, "-1024"},
		{0xdeadbeef, "0xdeadbeef"},
	}
	for _, tc := range cases {
		if got := FormatConst(tc.v); got != tc.want {
			t.Errorf("FormatConst(%#x) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestCanonCommutative(t *testing.T) {
	p := MustParse("addq(x, y)", 2)
	q := MustParse("addq(y, x)", 2)
	if p.Canon() != q.Canon() {
		t.Errorf("commutative canon differs: %q vs %q", p.Canon(), q.Canon())
	}
	r := MustParse("subq(x, y)", 2)
	s := MustParse("subq(y, x)", 2)
	if r.Canon() == s.Canon() {
		t.Error("non-commutative subq canonized as equal")
	}
}

func TestCanonIgnoresNodeOrder(t *testing.T) {
	p := MustParse("orq(andq(x, y), z)", 3)
	// Build the same graph with a different node layout via the
	// sharing notation.
	q := MustParse("a = andq(x, y); orq(a, z)", 3)
	if p.Canon() != q.Canon() {
		t.Errorf("canon depends on node layout: %q vs %q", p.Canon(), q.Canon())
	}
}

func TestPropertyParsePrintRoundTrip(t *testing.T) {
	f := func(seed uint64, x, y uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		p := randomValidProgram(rng, 2)
		q, err := Parse(p.String(), 2)
		if err != nil {
			return false
		}
		in := []uint64{x, y}
		return p.Output(in) == q.Output(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCanonStableUnderGC(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		p := randomValidProgram(rng, 2)
		c1 := p.Canon()
		p.GC()
		return p.Canon() == c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInputNames(t *testing.T) {
	for i, want := range []string{"x", "y", "z", "w", "in4", "in5"} {
		if got := InputName(i); got != want {
			t.Errorf("InputName(%d) = %q, want %q", i, got, want)
		}
		if got := inputIndex(want); got != i {
			t.Errorf("inputIndex(%q) = %d, want %d", want, got, i)
		}
	}
	if inputIndex("foo") != -1 || inputIndex("in2") != -1 {
		t.Error("inputIndex accepted a non-input name")
	}
}
