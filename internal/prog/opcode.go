// Package prog defines the program representation used throughout the
// system: rooted, directed, acyclic dataflow graphs whose nodes are
// instructions, 64-bit constants, or inputs (Section 3.1 of the
// paper). The root node is the program's result. The package provides
// the opcode table (both the full x86-flavoured operation set and the
// reduced model set of Section 4), an allocation-free evaluator, the
// structural invariants (acyclicity, no dead code, size limit), a
// canonical textual form, and a parser for that form.
package prog

import "fmt"

// Op identifies an operation. The zero value is OpInvalid so that
// uninitialized nodes are detectably broken.
type Op uint8

// Pseudo-ops for non-instruction nodes, followed by the real
// instruction opcodes. Binary operations come first, then unary ones;
// arity is recorded in the opcode table rather than implied by order.
const (
	OpInvalid Op = iota

	// Pseudo-ops: the node kinds that are not instructions.
	OpInput // node.Val is the input index
	OpConst // node.Val is the constant value

	// 64-bit binary operations (x86-flavoured, q suffix elided).
	OpAdd  // a + b
	OpSub  // a - b
	OpMul  // a * b (low 64 bits)
	OpDivU // a / b unsigned; 0 when b == 0
	OpRemU // a % b unsigned; 0 when b == 0
	OpDivS // a / b signed; 0 on divide-by-zero or MinInt64 / -1
	OpRemS // a % b signed; 0 on divide-by-zero or MinInt64 % -1
	OpAnd  // a & b
	OpOr   // a | b
	OpXor  // a ^ b
	OpShl  // a << (b & 63), x86 count masking
	OpShr  // a >> (b & 63) logical
	OpSar  // a >> (b & 63) arithmetic
	OpRol  // rotate left by b & 63
	OpRor  // rotate right by b & 63
	OpEq   // 1 if a == b else 0
	OpUlt  // 1 if a < b unsigned else 0
	OpSlt  // 1 if a < b signed else 0

	// 64-bit unary operations.
	OpNot    // ^a
	OpNeg    // -a
	OpBswap  // byte swap
	OpPopcnt // number of set bits
	OpClz    // leading zero count (64 when a == 0)
	OpCtz    // trailing zero count (64 when a == 0)
	OpSext8  // sign-extend low 8 bits
	OpSext16 // sign-extend low 16 bits
	OpSext32 // sign-extend low 32 bits
	OpZext8  // zero-extend low 8 bits
	OpZext16 // zero-extend low 16 bits
	OpZext32 // zero-extend low 32 bits

	// 32-bit binary variants. As with x86 l-suffix instructions, the
	// operation is performed on the low 32 bits and the result is
	// zero-extended to 64 bits.
	OpAdd32
	OpSub32
	OpMul32
	OpAnd32
	OpOr32
	OpXor32
	OpShl32 // count masked to & 31
	OpShr32
	OpSar32

	// 32-bit unary variants.
	OpNot32
	OpNeg32

	// Model operations (the reduced set of Section 4). The bitwise
	// model ops are distinct opcodes from their full-set counterparts
	// so the two dialects stay cleanly separated; the shifts move by
	// exactly one bit, shifting in zero.
	OpMAnd
	OpMOr
	OpMXor
	OpMNot
	OpMShl // a << 1
	OpMShr // a >> 1 (logical)

	numOps // sentinel; must stay last
)

// NumOps is the number of defined opcodes including pseudo-ops.
const NumOps = int(numOps)

// MaxArity is the largest arity of any operation.
const MaxArity = 2

// opInfo describes one opcode.
type opInfo struct {
	name  string
	arity int
}

var opTable = [numOps]opInfo{
	OpInvalid: {"invalid", 0},
	OpInput:   {"input", 0},
	OpConst:   {"const", 0},

	OpAdd:  {"addq", 2},
	OpSub:  {"subq", 2},
	OpMul:  {"mulq", 2},
	OpDivU: {"divq", 2},
	OpRemU: {"remq", 2},
	OpDivS: {"idivq", 2},
	OpRemS: {"iremq", 2},
	OpAnd:  {"andq", 2},
	OpOr:   {"orq", 2},
	OpXor:  {"xorq", 2},
	OpShl:  {"shlq", 2},
	OpShr:  {"shrq", 2},
	OpSar:  {"sarq", 2},
	OpRol:  {"rolq", 2},
	OpRor:  {"rorq", 2},
	OpEq:   {"eqq", 2},
	OpUlt:  {"ultq", 2},
	OpSlt:  {"sltq", 2},

	OpNot:    {"notq", 1},
	OpNeg:    {"negq", 1},
	OpBswap:  {"bswapq", 1},
	OpPopcnt: {"popcntq", 1},
	OpClz:    {"lzcntq", 1},
	OpCtz:    {"tzcntq", 1},
	OpSext8:  {"sextbq", 1},
	OpSext16: {"sextwq", 1},
	OpSext32: {"sextlq", 1},
	OpZext8:  {"zextbq", 1},
	OpZext16: {"zextwq", 1},
	OpZext32: {"zextlq", 1},

	OpAdd32: {"addl", 2},
	OpSub32: {"subl", 2},
	OpMul32: {"mull", 2},
	OpAnd32: {"andl", 2},
	OpOr32:  {"orl", 2},
	OpXor32: {"xorl", 2},
	OpShl32: {"shll", 2},
	OpShr32: {"shrl", 2},
	OpSar32: {"sarl", 2},

	OpNot32: {"notl", 1},
	OpNeg32: {"negl", 1},

	OpMAnd: {"and", 2},
	OpMOr:  {"or", 2},
	OpMXor: {"xor", 2},
	OpMNot: {"not", 1},
	OpMShl: {"shl", 1},
	OpMShr: {"shr", 1},
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if int(op) >= NumOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Arity returns the number of arguments the opcode takes. Pseudo-ops
// (inputs and constants) have arity 0.
func (op Op) Arity() int {
	if int(op) >= NumOps {
		return 0
	}
	return opTable[op].arity
}

// IsInstruction reports whether op is a real instruction opcode rather
// than a pseudo-op or the invalid sentinel.
func (op Op) IsInstruction() bool {
	return op > OpConst && op < numOps
}

// opByName maps mnemonics to opcodes for the parser. Model op names
// (and, or, ...) and full-set names (andq, orq, ...) are disjoint.
var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// OpByName returns the opcode with the given mnemonic, or OpInvalid
// and false if no such opcode exists.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
