package prog

import (
	mathbits "math/bits"

	"stochsyn/internal/testcase"
)

// EvalChunk is the case-block size of the incremental engine: dirty
// value columns are recomputed EvalChunk suite cases at a time, so a
// cost consumer that aborts early (bound exceeded) skips the remaining
// blocks entirely while the per-column inner loops stay long enough to
// amortize dispatch (and leave a seam for future vectorization).
const EvalChunk = 16

// EvalStats counts the engine's work, exposing the reuse the
// incremental scheme achieves over full re-evaluation. All counts
// cover the proposal path only (Begin/EvalRange), not full Resets.
type EvalStats struct {
	// NodesReevaluated counts node value columns recomputed across
	// proposals; NodesTotal counts node columns a full re-evaluation
	// would have computed. Their ratio is the column reuse rate.
	NodesReevaluated int64
	NodesTotal       int64
	// CasesEvaluated counts suite cases actually reached before the
	// cost consumer aborted; CasesTotal counts ncases per proposal.
	// The difference is the early-abort saving.
	CasesEvaluated int64
	CasesTotal     int64
}

// Sub returns the element-wise difference s - o (for delta flushes).
func (s EvalStats) Sub(o EvalStats) EvalStats {
	return EvalStats{
		NodesReevaluated: s.NodesReevaluated - o.NodesReevaluated,
		NodesTotal:       s.NodesTotal - o.NodesTotal,
		CasesEvaluated:   s.CasesEvaluated - o.CasesEvaluated,
		CasesTotal:       s.CasesTotal - o.CasesTotal,
	}
}

// EvalState is the incremental, case-major evaluation engine: it holds
// one value column per program node across all suite cases, keeps the
// columns synchronized with a program that is edited in place under a
// Journal, and recomputes only the columns whose values a proposal can
// have changed (the journal's dirty nodes plus their transitive
// users).
//
// Lifecycle per search iteration:
//
//	p.BeginEdit(j)            // attach the undo journal
//	mutator applies a move    // in-place, journaled
//	e.Begin(j)                // close the dirty set over users
//	e.EvalRange(c0, c1) ...   // consumer pulls root values per chunk
//	e.Commit() + p.EndEdit()  // accept: adopt proposal columns
//	e.Abort()  + p.Rollback() // reject: discard, restore program
//
// Proposal columns are double-buffered: EvalRange writes recomputed
// columns into a shadow buffer, so the committed columns stay exact
// for the pre-edit program and rejection needs no value restoration.
// An EvalState is single-threaded state, owned by one search run.
type EvalState struct {
	p      *Program
	suite  *testcase.Suite
	ncases int

	// cols[i] is the committed value column of node i for the current
	// program; prop[i] is the proposal shadow buffer. Both always hold
	// ncases-length slices; Commit swaps headers, never copies values.
	cols [MaxNodes][]uint64
	prop [MaxNodes][]uint64

	// Active proposal state (between Begin and Commit/Abort).
	j         *Journal
	dirty     uint32
	dirtyList [MaxNodes]int32
	ndirty    int
	// dirtyArgs[k] holds the resolved argument columns of dirtyList[k],
	// computed once in Begin: a proposal's column bindings (shadow
	// buffer vs committed column via the journal's index map) are fixed
	// for its lifetime, so per-chunk EvalRange calls need not re-resolve
	// them.
	dirtyArgs [MaxNodes][2][]uint64

	stats EvalStats
}

// NewEvalState builds an engine for the suite, with the permanent
// input-node columns filled in (they never change thereafter). Call
// Reset to bind a program before evaluating.
func NewEvalState(s *testcase.Suite) *EvalState {
	n := s.Len()
	e := &EvalState{suite: s, ncases: n}
	backing := make([]uint64, 2*MaxNodes*n)
	for i := 0; i < MaxNodes; i++ {
		e.cols[i] = backing[i*n : (i+1)*n : (i+1)*n]
		e.prop[i] = backing[(MaxNodes+i)*n : (MaxNodes+i+1)*n : (MaxNodes+i+1)*n]
	}
	for i := 0; i < s.NumInputs; i++ {
		col := e.cols[i]
		for c := range s.Cases {
			col[c] = s.Cases[c].Inputs[i]
		}
	}
	return e
}

// Suite returns the suite the engine evaluates against.
func (e *EvalState) Suite() *testcase.Suite { return e.suite }

// Stats returns the cumulative work counters.
func (e *EvalState) Stats() EvalStats { return e.stats }

// Program returns the program the committed columns describe.
func (e *EvalState) Program() *Program { return e.p }

// Reset binds p and fully (re)computes every committed column. Used at
// search start and after checkpoint restores; the incremental path
// never needs it.
func (e *EvalState) Reset(p *Program) {
	if p.NumInputs != e.suite.NumInputs {
		panic("prog: EvalState.Reset program/suite input arity mismatch")
	}
	e.p = p
	e.j = nil
	for _, i := range p.TopoOrder() {
		if int(i) < p.NumInputs {
			continue // permanent, precomputed
		}
		e.fillColumn(&p.Nodes[i], e.cols[i], e.committedArgs(&p.Nodes[i]), 0, e.ncases)
	}
}

// committedArgs resolves a node's argument columns against the
// committed matrix (full-reset path: indices are current).
func (e *EvalState) committedArgs(nd *Node) [2][]uint64 {
	var ab [2][]uint64
	for a := 0; a < nd.Op.Arity(); a++ {
		ab[a] = e.cols[nd.Args[a]]
	}
	return ab
}

// RootColumn returns the committed value column of the program root.
func (e *EvalState) RootColumn() []uint64 { return e.cols[e.p.Root] }

// CaseValues writes the committed value of every node on suite case c
// into dst (length >= the program's node count). It is the engine
// counterpart of Program.Eval's all-node output, used by the
// redundancy move's signature probes.
func (e *EvalState) CaseValues(c int, dst []uint64) {
	for i := 0; i < len(e.p.Nodes); i++ {
		dst[i] = e.cols[i][c]
	}
}

// Begin starts a proposal against the journaled in-place edit: it
// closes the journal's dirty-node set over transitive users in
// topological order, producing the exact set of columns EvalRange must
// recompute. Every other column is reused from the committed matrix
// (renumbered through the journal's index map when GC compacted).
func (e *EvalState) Begin(j *Journal) {
	e.j = j
	p := e.p
	order := p.TopoOrder()
	dirty := j.dirty
	nd := 0
	if dirty != 0 {
		for _, i := range order {
			bit := uint32(1) << uint(i)
			if dirty&bit == 0 {
				n := &p.Nodes[i]
				for a := 0; a < n.Op.Arity(); a++ {
					if dirty&(1<<uint(n.Args[a])) != 0 {
						dirty |= bit
						break
					}
				}
			}
			if dirty&bit != 0 {
				e.dirtyList[nd] = i
				nd++
			}
		}
	}
	e.dirty = dirty
	e.ndirty = nd
	// Resolve each dirty node's argument columns once; the bindings do
	// not change between EvalRange chunks.
	for k := 0; k < nd; k++ {
		n := &p.Nodes[e.dirtyList[k]]
		for a := 0; a < n.Op.Arity(); a++ {
			e.dirtyArgs[k][a] = e.argColumn(n.Args[a])
		}
	}
	e.stats.NodesReevaluated += int64(nd)
	e.stats.NodesTotal += int64(len(order))
	e.stats.CasesTotal += int64(e.ncases)
}

// argColumn resolves an argument index of the proposal program to its
// value column: the shadow buffer for dirty nodes, the committed
// column (via the journal's index map) otherwise.
func (e *EvalState) argColumn(i int32) []uint64 {
	if e.dirty&(1<<uint(i)) != 0 {
		return e.prop[i]
	}
	return e.cols[e.j.Src(int(i))]
}

// EvalRange recomputes the dirty columns for suite cases [c0, c1) and
// returns the proposal's root values for that range. Consumers call it
// block by block in case order and may stop early; Commit requires
// every block to have been pulled (an accept implies the cost summed
// all cases).
func (e *EvalState) EvalRange(c0, c1 int) []uint64 {
	p := e.p
	for k := 0; k < e.ndirty; k++ {
		i := e.dirtyList[k]
		e.fillColumn(&p.Nodes[i], e.prop[i], e.dirtyArgs[k], c0, c1)
	}
	e.stats.CasesEvaluated += int64(c1 - c0)
	root := p.Root
	if e.dirty&(1<<uint(root)) != 0 {
		return e.prop[root][c0:c1]
	}
	return e.cols[e.j.Src(int(root))][c0:c1]
}

// fillColumn computes one node's values for cases [c0, c1) into dst.
// The opcode dispatch happens once per column rather than once per
// case: the most frequent opcodes get dedicated tight loops (bit-equal
// to evalOp by construction — each loop body is the corresponding
// evalOp arm), and everything else falls back to the per-case evalOp
// switch.
func (e *EvalState) fillColumn(nd *Node, dst []uint64, ab [2][]uint64, c0, c1 int) {
	d := dst[c0:c1]
	switch nd.Op {
	case OpConst:
		v := nd.Val
		for c := range d {
			d[c] = v
		}
	case OpInput:
		// Defensive: body nodes are never inputs (Validate forbids it)
		// and Reset skips the permanent input prefix, but fall back to
		// the precomputed input column if one ever lands here.
		copy(d, e.cols[int(nd.Val)][c0:c1])
	case OpAdd:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] + b[c]
		}
	case OpSub:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] - b[c]
		}
	case OpMul:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] * b[c]
		}
	case OpAnd, OpMAnd:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] & b[c]
		}
	case OpOr, OpMOr:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] | b[c]
		}
	case OpXor, OpMXor:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] ^ b[c]
		}
	case OpShl:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] << (b[c] & 63)
		}
	case OpShr:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = a[c] >> (b[c] & 63)
		}
	case OpSar:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(int64(a[c]) >> (b[c] & 63))
		}
	case OpRol:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = mathbits.RotateLeft64(a[c], int(b[c]&63))
		}
	case OpRor:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = mathbits.RotateLeft64(a[c], -int(b[c]&63))
		}
	case OpEq:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			if a[c] == b[c] {
				d[c] = 1
			} else {
				d[c] = 0
			}
		}
	case OpUlt:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			if a[c] < b[c] {
				d[c] = 1
			} else {
				d[c] = 0
			}
		}
	case OpSlt:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			if int64(a[c]) < int64(b[c]) {
				d[c] = 1
			} else {
				d[c] = 0
			}
		}
	case OpAdd32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) + uint32(b[c]))
		}
	case OpSub32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) - uint32(b[c]))
		}
	case OpMul32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) * uint32(b[c]))
		}
	case OpAnd32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) & uint32(b[c]))
		}
	case OpOr32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) | uint32(b[c]))
		}
	case OpXor32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) ^ uint32(b[c]))
		}
	case OpShl32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) << (b[c] & 31))
		}
	case OpShr32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]) >> (b[c] & 31))
		}
	case OpSar32:
		a, b := ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(int32(a[c]) >> (b[c] & 31)))
		}
	case OpNot, OpMNot:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = ^a[c]
		}
	case OpNeg:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = -a[c]
		}
	case OpNot32:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(^uint32(a[c]))
		}
	case OpNeg32:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(-uint32(a[c]))
		}
	case OpBswap:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = mathbits.ReverseBytes64(a[c])
		}
	case OpPopcnt:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(mathbits.OnesCount64(a[c]))
		}
	case OpClz:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(mathbits.LeadingZeros64(a[c]))
		}
	case OpCtz:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(mathbits.TrailingZeros64(a[c]))
		}
	case OpSext8:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(int64(int8(a[c])))
		}
	case OpSext16:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(int64(int16(a[c])))
		}
	case OpSext32:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(int64(int32(a[c])))
		}
	case OpZext8:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(uint8(a[c]))
		}
	case OpZext16:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(uint16(a[c]))
		}
	case OpZext32:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = uint64(uint32(a[c]))
		}
	case OpMShl:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = a[c] << 1
		}
	case OpMShr:
		a := ab[0][c0:c1]
		for c := range d {
			d[c] = a[c] >> 1
		}
	default:
		if nd.Op.Arity() == 1 {
			op, a := nd.Op, ab[0][c0:c1]
			for c := range d {
				d[c] = evalOp(op, a[c], 0)
			}
			return
		}
		op, a, b := nd.Op, ab[0][c0:c1], ab[1][c0:c1]
		for c := range d {
			d[c] = evalOp(op, a[c], b[c])
		}
	}
}

// Commit adopts the proposal: surviving committed columns are re-homed
// to their post-edit indices (a header permutation, no value copies)
// and the recomputed shadow columns are swapped in. The program must
// have been fully evaluated (all case blocks pulled).
func (e *EvalState) Commit() {
	j := e.j
	n := len(e.p.Nodes)
	if j.compacted {
		// srcIdx is strictly increasing over surviving nodes
		// (compaction preserves order and only moves nodes down), so
		// ascending swaps re-home every surviving column without
		// clobbering one that is still needed.
		for i := 0; i < n; i++ {
			if s := int(j.srcIdx[i]); s >= 0 && s != i {
				e.cols[i], e.cols[s] = e.cols[s], e.cols[i]
			}
		}
	}
	for mask := e.dirty; mask != 0; {
		i := mathbits.TrailingZeros32(mask)
		mask &^= 1 << uint(i)
		e.cols[i], e.prop[i] = e.prop[i], e.cols[i]
	}
	e.j = nil
	e.dirty = 0
	e.ndirty = 0
}

// Abort discards the proposal. The committed columns were never
// touched, so after the program edit is rolled back the engine is
// exactly in its pre-proposal state.
func (e *EvalState) Abort() {
	e.j = nil
	e.dirty = 0
	e.ndirty = 0
}
