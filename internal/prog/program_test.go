package prog

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	p := NewZero(2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Output([]uint64{5, 6}); got != 0 {
		t.Errorf("zero program returned %d", got)
	}
	if p.BodyLen() != 1 {
		t.Errorf("BodyLen = %d, want 1", p.BodyLen())
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3 (2 inputs + 1 const)", p.Len())
	}
}

func TestNewConst(t *testing.T) {
	p := NewConst(1, 42)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Output([]uint64{7}); got != 42 {
		t.Errorf("const program returned %d, want 42", got)
	}
}

func TestNewInput(t *testing.T) {
	p := NewInput(3, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Output([]uint64{10, 20, 30}); got != 20 {
		t.Errorf("input program returned %d, want 20", got)
	}
}

func TestNewInputPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range input index")
		}
	}()
	NewInput(2, 2)
}

func TestNewBasePanicsTooManyInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many inputs")
		}
	}()
	NewZero(MaxInputs + 1)
}

// build constructs a program from a textual expression and fails the
// test on error.
func build(t *testing.T, src string, numInputs int) *Program {
	t.Helper()
	p, err := Parse(src, numInputs)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestEvalFigure2(t *testing.T) {
	// The paper's Figure 2 example: orq(andq(x, y), andq(notq(x), z)).
	p := build(t, "orq(andq(x, y), andq(notq(x), z))", 3)
	for _, tc := range []struct{ x, y, z, want uint64 }{
		{0, 1, 2, 2},
		{^uint64(0), 5, 9, 5},
		{0xFF00, 0x1234, 0x5678, 0x1278},
	} {
		if got := p.Output([]uint64{tc.x, tc.y, tc.z}); got != tc.want {
			t.Errorf("select(%#x,%#x,%#x) = %#x, want %#x", tc.x, tc.y, tc.z, got, tc.want)
		}
	}
}

func TestEvalSharing(t *testing.T) {
	// a = notq(x); addq(a, a) evaluates the shared node once.
	p := build(t, "a = notq(x); addq(a, a)", 1)
	x := uint64(10)
	want := (^x) + (^x)
	if got := p.Output([]uint64{x}); got != want {
		t.Errorf("got %#x, want %#x", got, want)
	}
	// The shared node must appear only once in the graph.
	if p.BodyLen() != 2 {
		t.Errorf("BodyLen = %d, want 2 (not, add)", p.BodyLen())
	}
}

func TestTopoOrderArgsFirst(t *testing.T) {
	p := build(t, "orq(andq(x, y), andq(notq(x), z))", 3)
	pos := make(map[int32]int)
	for i, n := range p.TopoOrder() {
		pos[n] = i
	}
	for i, nd := range p.Nodes {
		for a := 0; a < nd.Op.Arity(); a++ {
			if pos[nd.Args[a]] >= pos[int32(i)] {
				t.Errorf("node %d's argument %d ordered after it", i, nd.Args[a])
			}
		}
	}
}

func TestTopoOrderPanicsOnCycle(t *testing.T) {
	p := NewZero(1)
	// Manufacture a cycle: two instruction nodes pointing at each
	// other.
	p.Nodes = append(p.Nodes, Node{Op: OpAdd, Args: [MaxArity]int32{3, 0}})
	p.Nodes = append(p.Nodes, Node{Op: OpAdd, Args: [MaxArity]int32{2, 0}})
	p.Root = 2
	p.Invalidate()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for cyclic graph")
		}
	}()
	p.TopoOrder()
}

func TestValidateRejectsCycle(t *testing.T) {
	p := NewZero(1)
	p.Nodes = append(p.Nodes, Node{Op: OpAdd, Args: [MaxArity]int32{3, 0}})
	p.Nodes = append(p.Nodes, Node{Op: OpAdd, Args: [MaxArity]int32{2, 0}})
	p.Root = 2
	p.Invalidate()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a cyclic program")
	}
}

func TestValidateRejectsDeadCode(t *testing.T) {
	p := NewZero(1)
	// Unreachable extra const node.
	p.Nodes = append(p.Nodes, Node{Op: OpConst, Val: 7})
	p.Invalidate()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted dead body node")
	}
}

func TestValidateRejectsDuplicateInputNode(t *testing.T) {
	p := NewZero(1)
	p.Nodes = append(p.Nodes, Node{Op: OpInput, Val: 0})
	p.Root = int32(len(p.Nodes) - 1)
	p.Invalidate()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a duplicate input node in the body")
	}
}

func TestValidateRejectsStaleOperandSlots(t *testing.T) {
	// A const node whose unused Args carry a leftover index: this is
	// "dangling wiring" that structural comparison and hashing would
	// otherwise silently observe.
	p := NewConst(1, 7)
	p.Nodes[p.Root].Args[0] = 1
	p.Invalidate()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a const node with a stale operand slot")
	}

	// Same for the unused second slot of a unary instruction.
	q := build(t, "notq(x)", 1)
	for i := range q.Nodes {
		if q.Nodes[i].Op == OpNot {
			q.Nodes[i].Args[1] = 1
		}
	}
	q.Invalidate()
	if err := q.Validate(); err == nil {
		t.Error("Validate accepted a unary node with a stale second operand")
	}
}

func TestValidateRejectsOversizedBody(t *testing.T) {
	p := NewZero(1)
	for i := 0; i < MaxBody; i++ {
		p.Nodes = append(p.Nodes, Node{Op: OpNot, Args: [MaxArity]int32{int32(len(p.Nodes) - 1)}})
	}
	p.Root = int32(len(p.Nodes) - 1)
	p.Invalidate()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a body over the size limit")
	}
}

func TestGCKeepsInputs(t *testing.T) {
	p := build(t, "notq(x)", 2) // input y unused
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (x, y, notq)", p.Len())
	}
	removed := p.GC()
	if removed != 0 {
		t.Errorf("GC removed %d nodes from a clean program", removed)
	}
	if p.NumInputs != 2 || p.Nodes[1].Op != OpInput {
		t.Error("GC dropped a permanent input node")
	}
}

func TestGCRemovesDeadBody(t *testing.T) {
	p := build(t, "addq(x, 1)", 1)
	// Point the root at the input, orphaning the add and const.
	p.Root = 0
	p.Invalidate()
	if removed := p.GC(); removed != 2 {
		t.Errorf("GC removed %d nodes, want 2", removed)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Output([]uint64{9}); got != 9 {
		t.Errorf("after GC got %d, want identity 9", got)
	}
}

func TestReachesFrom(t *testing.T) {
	p := build(t, "addq(notq(x), 1)", 1)
	// Find node indices.
	var addIdx, notIdx, constIdx int32 = -1, -1, -1
	for i, nd := range p.Nodes {
		switch nd.Op {
		case OpAdd:
			addIdx = int32(i)
		case OpNot:
			notIdx = int32(i)
		case OpConst:
			constIdx = int32(i)
		}
	}
	if !p.ReachesFrom(addIdx, notIdx) {
		t.Error("add should reach not")
	}
	if !p.ReachesFrom(notIdx, 0) {
		t.Error("not should reach input x")
	}
	if p.ReachesFrom(notIdx, addIdx) {
		t.Error("not should not reach add")
	}
	if p.ReachesFrom(constIdx, notIdx) {
		t.Error("const should not reach not")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := build(t, "addq(x, 1)", 1)
	q := p.Clone()
	q.Nodes[q.Root].Op = OpSub
	q.Invalidate()
	if p.Output([]uint64{5}) != 6 {
		t.Error("mutating clone affected original")
	}
	if q.Output([]uint64{5}) != 4 {
		t.Error("clone mutation had no effect")
	}
}

func TestCopyFrom(t *testing.T) {
	p := build(t, "addq(x, 1)", 1)
	q := NewZero(1)
	q.CopyFrom(p)
	if !q.Equal(p) {
		t.Error("CopyFrom produced unequal program")
	}
	if q.Output([]uint64{5}) != 6 {
		t.Error("CopyFrom result evaluates wrong")
	}
	// Mutating the copy must not affect the source.
	q.Nodes[q.Root].Op = OpSub
	q.Invalidate()
	if p.Output([]uint64{5}) != 6 {
		t.Error("CopyFrom aliased node storage")
	}
}

func TestEqual(t *testing.T) {
	p := build(t, "addq(x, 1)", 1)
	q := build(t, "addq(x, 1)", 1)
	if !p.Equal(q) {
		t.Error("identical parses compare unequal")
	}
	r := build(t, "addq(x, 2)", 1)
	if p.Equal(r) {
		t.Error("different constants compare equal")
	}
}

// randomValidProgram builds a random valid program for property tests.
func randomValidProgram(rng *rand.Rand, numInputs int) *Program {
	p := NewZero(numInputs)
	n := rng.IntN(MaxBody - 1)
	for i := 0; i < n; i++ {
		op := FullSet.RandomOp(rng)
		nd := Node{Op: op}
		for a := 0; a < op.Arity(); a++ {
			nd.Args[a] = int32(rng.IntN(len(p.Nodes)))
		}
		p.Nodes = append(p.Nodes, nd)
	}
	p.Root = int32(len(p.Nodes) - 1)
	p.Invalidate()
	p.GC()
	return p
}

func TestPropertyRandomProgramsValid(t *testing.T) {
	f := func(seed uint64, nInputsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		numInputs := 1 + int(nInputsRaw)%MaxInputs
		p := randomValidProgram(rng, numInputs)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEvalDeterministic(t *testing.T) {
	f := func(seed uint64, x, y uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		p := randomValidProgram(rng, 2)
		in := []uint64{x, y}
		return p.Output(in) == p.Output(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGCPreservesSemantics(t *testing.T) {
	f := func(seed uint64, x uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		p := randomValidProgram(rng, 1)
		before := p.Output([]uint64{x})
		q := p.Clone()
		q.GC()
		return q.Output([]uint64{x}) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvalOpSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, ^uint64(0)}, // -1
		{OpMul, 1 << 32, 1 << 32, 0},
		{OpDivU, 7, 2, 3},
		{OpDivU, 7, 0, 0}, // trap -> 0
		{OpRemU, 7, 2, 1},
		{OpRemU, 7, 0, 0},
		{OpDivS, ^uint64(0) - 6, 2, ^uint64(0) - 2}, // -7 / 2 = -3
		{OpDivS, 1 << 63, ^uint64(0), 0},            // MinInt64 / -1 -> 0
		{OpRemS, ^uint64(0) - 6, 2, ^uint64(0)},     // -7 % 2 = -1
		{OpRemS, 1 << 63, ^uint64(0), 0},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 65, 2}, // x86 count masking (65 & 63 = 1)
		{OpShr, 8, 2, 2},
		{OpSar, 1 << 63, 1, 3 << 62},
		{OpRol, 1 << 63, 1, 1},
		{OpRor, 1, 1, 1 << 63},
		{OpEq, 5, 5, 1},
		{OpEq, 5, 6, 0},
		{OpUlt, 1, 2, 1},
		{OpUlt, ^uint64(0), 1, 0},
		{OpSlt, ^uint64(0), 1, 1}, // -1 < 1 signed
		{OpNot, 0, 0, ^uint64(0)},
		{OpNeg, 1, 0, ^uint64(0)},
		{OpBswap, 0x0102030405060708, 0, 0x0807060504030201},
		{OpPopcnt, 0xFF, 0, 8},
		{OpClz, 1, 0, 63},
		{OpClz, 0, 0, 64},
		{OpCtz, 8, 0, 3},
		{OpCtz, 0, 0, 64},
		{OpSext8, 0x80, 0, 0xFFFFFFFFFFFFFF80},
		{OpSext16, 0x8000, 0, 0xFFFFFFFFFFFF8000},
		{OpSext32, 0x80000000, 0, 0xFFFFFFFF80000000},
		{OpZext8, 0x1FF, 0, 0xFF},
		{OpZext16, 0x1FFFF, 0, 0xFFFF},
		{OpZext32, 0x1FFFFFFFF, 0, 0xFFFFFFFF},
		{OpAdd32, 0xFFFFFFFF, 1, 0}, // wraps at 32 bits, zero-extends
		{OpSub32, 0, 1, 0xFFFFFFFF},
		{OpMul32, 1 << 31, 2, 0},
		{OpShl32, 1, 33, 2}, // 32-bit count masking
		{OpShr32, 0x80000000, 31, 1},
		{OpSar32, 0x80000000, 31, 0xFFFFFFFF},
		{OpNot32, 0, 0, 0xFFFFFFFF},
		{OpNeg32, 1, 0, 0xFFFFFFFF},
		{OpMAnd, 0b1100, 0b1010, 0b1000},
		{OpMOr, 0b1100, 0b1010, 0b1110},
		{OpMXor, 0b1100, 0b1010, 0b0110},
		{OpMNot, 0, 0, ^uint64(0)},
		{OpMShl, 1 << 63, 0, 0}, // shifts out
		{OpMShr, 1, 0, 0},
	}
	for _, tc := range cases {
		if got := EvalOp(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPropertyShiftMasking(t *testing.T) {
	// Shl/Shr/Sar must follow x86 masking semantics for all counts.
	f := func(a, b uint64) bool {
		return EvalOp(OpShl, a, b) == a<<(b&63) &&
			EvalOp(OpShr, a, b) == a>>(b&63) &&
			EvalOp(OpSar, a, b) == uint64(int64(a)>>(b&63))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDivNeverTraps(t *testing.T) {
	f := func(a, b uint64) bool {
		// Must not panic for any input, including b == 0 and the
		// MinInt64 / -1 overflow case.
		for _, op := range []Op{OpDivU, OpRemU, OpDivS, OpRemS} {
			EvalOp(op, a, b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Spot-check that the sentinel results are finite (not math.NaN
	// via conversion paths).
	if r := EvalOp(OpDivS, 1<<63, math.MaxUint64); r != 0 {
		t.Errorf("MinInt64 / -1 = %d, want 0", r)
	}
}
