package prog

import (
	"encoding/json"
	"fmt"
)

// JSON encoding preserves the exact node array (order included), which
// the textual notation does not: search checkpoints require exact
// state so the resumed random walk is bit-identical to an
// uninterrupted one.

type nodeJSON struct {
	Op   string  `json:"op"`
	Args []int32 `json:"args,omitempty"`
	Val  uint64  `json:"val,omitempty"`
}

type programJSON struct {
	NumInputs int        `json:"num_inputs"`
	Root      int32      `json:"root"`
	Body      []nodeJSON `json:"body"`
}

// MarshalJSON implements json.Marshaler with the exact graph layout.
// Only body nodes are serialized; the permanent input nodes are
// implied by num_inputs.
func (p *Program) MarshalJSON() ([]byte, error) {
	pj := programJSON{NumInputs: p.NumInputs, Root: p.Root}
	for _, nd := range p.Nodes[p.NumInputs:] {
		nj := nodeJSON{Op: nd.Op.String(), Val: nd.Val}
		for a := 0; a < nd.Op.Arity(); a++ {
			nj.Args = append(nj.Args, nd.Args[a])
		}
		if nd.Op == OpConst {
			nj.Op = "const"
		}
		pj.Body = append(pj.Body, nj)
	}
	return json.Marshal(pj)
}

// UnmarshalJSON implements json.Unmarshaler; the result is validated.
func (p *Program) UnmarshalJSON(data []byte) error {
	var pj programJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	if pj.NumInputs < 0 || pj.NumInputs > MaxInputs {
		return fmt.Errorf("prog: json input count %d out of range", pj.NumInputs)
	}
	q := newBase(pj.NumInputs)
	for i, nj := range pj.Body {
		nd := Node{Val: nj.Val}
		switch nj.Op {
		case "const":
			nd.Op = OpConst
		default:
			op, ok := OpByName(nj.Op)
			if !ok || !op.IsInstruction() {
				return fmt.Errorf("prog: json body node %d has unknown op %q", i, nj.Op)
			}
			nd.Op = op
			if len(nj.Args) != op.Arity() {
				return fmt.Errorf("prog: json body node %d: %s takes %d args, got %d",
					i, op, op.Arity(), len(nj.Args))
			}
			copy(nd.Args[:], nj.Args)
		}
		q.Nodes = append(q.Nodes, nd)
	}
	q.Root = pj.Root
	q.Invalidate()
	if err := q.Validate(); err != nil {
		return err
	}
	*p = *q
	return nil
}
