package prog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the textual program notation produced by String:
//
//	program  := (binding ";")* expr
//	binding  := ident "=" expr
//	expr     := input | constant | op "(" expr ("," expr)* ")"
//
// Inputs are named x, y, z, w, in4, in5, ...; constants are signed
// decimal or 0x-prefixed hex; ops are the mnemonics of the opcode
// table. numInputs fixes the input arity of the resulting program
// (the expression may use fewer inputs but not more).
//
// Bindings introduce sharing: every reference to a bound name reuses
// the same node. Unshared subexpressions always create fresh nodes, so
// Parse(p.String()) reproduces p's dataflow graph up to node order.
func Parse(src string, numInputs int) (*Program, error) {
	if numInputs < 0 || numInputs > MaxInputs {
		return nil, fmt.Errorf("prog: input count %d out of range [0, %d]", numInputs, MaxInputs)
	}
	pr := &parser{src: src, prog: newBase(numInputs), env: map[string]int32{}}
	parts := splitTop(src, ';')
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("prog: empty statement %d", i+1)
		}
		last := i == len(parts)-1
		if eq := topIndex(part, '='); eq >= 0 {
			if last {
				return nil, fmt.Errorf("prog: final statement must be an expression, got binding %q", part)
			}
			name := strings.TrimSpace(part[:eq])
			if !isIdent(name) {
				return nil, fmt.Errorf("prog: invalid binding name %q", name)
			}
			if inputIndex(name) >= 0 {
				return nil, fmt.Errorf("prog: binding name %q collides with input name", name)
			}
			if _, dup := pr.env[name]; dup {
				return nil, fmt.Errorf("prog: duplicate binding %q", name)
			}
			idx, err := pr.expr(strings.TrimSpace(part[eq+1:]))
			if err != nil {
				return nil, err
			}
			pr.env[name] = idx
		} else {
			if !last {
				return nil, fmt.Errorf("prog: statement %d is not a binding", i+1)
			}
			idx, err := pr.expr(part)
			if err != nil {
				return nil, err
			}
			pr.prog.Root = idx
		}
	}
	pr.prog.GC() // unused bindings become dead nodes; drop them
	if body := pr.prog.BodyLen(); body > MaxBody {
		return nil, fmt.Errorf("prog: program has %d body nodes, limit is %d", body, MaxBody)
	}
	if err := pr.prog.Validate(); err != nil {
		return nil, err
	}
	return pr.prog, nil
}

// MustParse is Parse for tests and package-internal tables; it panics
// on error.
func MustParse(src string, numInputs int) *Program {
	p, err := Parse(src, numInputs)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src  string
	prog *Program
	env  map[string]int32
}

// expr parses one expression string and returns the index of the node
// representing it, appending nodes to the program as needed.
func (pr *parser) expr(s string) (int32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("prog: empty expression")
	}
	// Operation application?
	if open := strings.IndexByte(s, '('); open >= 0 {
		name := strings.TrimSpace(s[:open])
		if !strings.HasSuffix(s, ")") {
			return 0, fmt.Errorf("prog: missing ')' in %q", s)
		}
		op, ok := OpByName(name)
		if !ok || !op.IsInstruction() {
			return 0, fmt.Errorf("prog: unknown operation %q", name)
		}
		argSrc := splitTop(s[open+1:len(s)-1], ',')
		if len(argSrc) == 1 && strings.TrimSpace(argSrc[0]) == "" {
			argSrc = nil
		}
		if len(argSrc) != op.Arity() {
			return 0, fmt.Errorf("prog: %s takes %d arguments, got %d", name, op.Arity(), len(argSrc))
		}
		nd := Node{Op: op}
		for a, as := range argSrc {
			idx, err := pr.expr(as)
			if err != nil {
				return 0, err
			}
			nd.Args[a] = idx
		}
		return pr.add(nd)
	}
	// Bound name?
	if idx, ok := pr.env[s]; ok {
		return idx, nil
	}
	// Input? Inputs resolve to their permanent nodes.
	if i := inputIndex(s); i >= 0 {
		if i >= pr.prog.NumInputs {
			return 0, fmt.Errorf("prog: input %s out of range (program has %d inputs)", s, pr.prog.NumInputs)
		}
		return int32(i), nil
	}
	// Constant?
	if v, err := parseConst(s); err == nil {
		return pr.add(Node{Op: OpConst, Val: v})
	}
	return 0, fmt.Errorf("prog: cannot parse %q", s)
}

func (pr *parser) add(nd Node) (int32, error) {
	if pr.prog.BodyLen() >= 48 { // hard stop against runaway inputs; real limit checked after GC
		return 0, fmt.Errorf("prog: expression too large")
	}
	pr.prog.Nodes = append(pr.prog.Nodes, nd)
	return int32(len(pr.prog.Nodes) - 1), nil
}

// parseConst accepts signed decimal and 0x hex (with optional sign).
func parseConst(s string) (uint64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

// isIdent reports whether s is a plausible identifier (letter followed
// by letters/digits).
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !unicode.IsLetter(r) {
			return false
		}
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// splitTop splits s on sep occurrences that are not nested inside
// parentheses.
func splitTop(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// topIndex returns the index of the first sep at parenthesis depth 0,
// or -1.
func topIndex(s string, sep byte) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}
