package prog_test

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/mutate"
	"stochsyn/internal/prog"
)

// refAncestors recomputes Ancestors(to) from the node array alone: the
// fixpoint of "a node is an ancestor if it is to or reads an ancestor
// through a live argument slot". It is the specification the cached
// user masks must agree with at every point of an edit's lifecycle.
func refAncestors(p *prog.Program, to int32) uint64 {
	mask := uint64(1) << uint(to)
	for changed := true; changed; {
		changed = false
		for i := range p.Nodes {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			nd := &p.Nodes[i]
			for a := 0; a < nd.Op.Arity(); a++ {
				if mask&(1<<uint(nd.Args[a])) != 0 {
					mask |= 1 << uint(i)
					changed = true
					break
				}
			}
		}
	}
	return mask
}

func checkAncestors(t *testing.T, p *prog.Program, where string) {
	t.Helper()
	for to := int32(0); to < int32(p.Len()); to++ {
		if got, want := p.Ancestors(to), refAncestors(p, to); got != want {
			t.Fatalf("%s: Ancestors(%d) = %#x, want %#x\nprogram: %s",
				where, to, got, want, p)
		}
	}
}

// TestAncestorsMaintainedAcrossEdits drives random journaled edit
// sequences — opcode swaps (including arity changes), operand moves,
// appends, GC — through random mixes of mid-edit queries, rollbacks,
// and commits, checking after every step that the incrementally
// maintained user masks still answer Ancestors exactly like a from-
// scratch recomputation. This pins the in-place maintenance in SetOp/
// SetArg/AppendNode and the journal-driven repair in Rollback.
func TestAncestorsMaintainedAcrossEdits(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	set := prog.FullSet
	for trial := 0; trial < 200; trial++ {
		p := mutate.RandomProgram(uint64(trial)+1, 2, 10+rng.IntN(30))
		checkAncestors(t, p, "fresh")
		var j prog.Journal
		for step := 0; step < 40; step++ {
			// Warm the cache outside the edit half the time, so both the
			// maintained-through-edit and built-mid-edit paths run.
			if rng.IntN(2) == 0 {
				p.Ancestors(int32(rng.IntN(p.Len())))
			}
			p.BeginEdit(&j)
			nEdits := 1 + rng.IntN(3)
			for k := 0; k < nEdits; k++ {
				move := rng.IntN(4)
				if p.BodyLen() == 0 && move < 2 {
					move = 2 // nothing to rewrite yet; append instead
				}
				var i int32
				if p.BodyLen() > 0 {
					i = int32(p.NumInputs + rng.IntN(p.BodyLen()))
				}
				switch move {
				case 0:
					// A grown arity exposes whatever the hidden slot holds;
					// mutate only grows arity on slots it immediately
					// repoints, so mirror that contract here and skip swaps
					// whose stale slot would close a cycle.
					op := set.RandomOp(rng)
					nd := p.Nodes[i]
					ok := true
					for a := nd.Op.Arity(); a < op.Arity(); a++ {
						if refAncestors(p, i)&(1<<uint(nd.Args[a])) != 0 {
							ok = false
						}
					}
					if ok {
						p.SetOp(i, op)
					}
				case 1:
					nd := p.Nodes[i]
					if ar := nd.Op.Arity(); ar > 0 {
						slot := rng.IntN(ar)
						// Stay acyclic: only retarget at non-ancestors. Use the
						// reference closure, not the cache under test, so a
						// maintenance bug cannot corrupt the walk itself.
						anc := refAncestors(p, i)
						var cands []int32
						for v := int32(0); v < int32(p.Len()); v++ {
							if anc&(1<<uint(v)) == 0 {
								cands = append(cands, v)
							}
						}
						if len(cands) > 0 {
							p.SetArg(i, slot, cands[rng.IntN(len(cands))])
						}
					}
				case 2:
					if p.BodyLen() < prog.MaxBody {
						op := set.RandomOp(rng)
						var nd prog.Node
						nd.Op = op
						for a := 0; a < op.Arity(); a++ {
							nd.Args[a] = int32(rng.IntN(p.Len()))
						}
						p.AppendNode(nd)
					}
				case 3:
					p.SetRoot(int32(rng.IntN(p.Len())))
				}
				if rng.IntN(2) == 0 {
					checkAncestors(t, p, "mid-edit")
				}
			}
			if rng.IntN(4) == 0 {
				p.GC()
			}
			if rng.IntN(2) == 0 {
				p.Rollback()
				checkAncestors(t, p, "after rollback")
			} else {
				p.EndEdit()
				checkAncestors(t, p, "after commit")
			}
		}
	}
}
