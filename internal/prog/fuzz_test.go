package prog

import "testing"

// FuzzParse exercises the expression parser with arbitrary input: it
// must never panic, and anything it accepts must be a valid program
// whose printed form re-parses to the same semantics.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"x", "addq(x, y)", "a = notq(x); addq(a, a)",
		"orq(andq(x, y), andq(notq(x), z))", "0xdeadbeef", "-1",
		"and(or(x, x), shl(x))", "mulq(in4, in5)",
		"a = 1; b = 2; addq(a, b)", "addq(x,", "))((", "q = 3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src, 6)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted invalid program: %v", err)
		}
		q, err := Parse(p.String(), 6)
		if err != nil {
			t.Fatalf("printed form %q does not re-parse: %v", p.String(), err)
		}
		in := []uint64{1, 2, 3, 4, 5, 6}
		if p.Output(in) != q.Output(in) {
			t.Fatalf("round trip changed semantics for %q", src)
		}
	})
}
