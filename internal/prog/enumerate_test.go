package prog

import (
	"testing"
)

var modelConsts = []uint64{0, ^uint64(0)}

func TestEnumerateSmall(t *testing.T) {
	// Size 0: just x. Size <= 1: x, 0, -1, and the six unary/binary...
	// Size 1 adds the two constants plus not(x), shl(x), shr(x), and
	// the binaries over x alone: and(x,x), or(x,x), xor(x,x).
	var canons []string
	Enumerate(ModelSet, 1, 1, modelConsts, func(p *Program) bool {
		if err := p.Validate(); err != nil {
			t.Fatalf("enumerated invalid program: %v", err)
		}
		canons = append(canons, p.Canon())
		return true
	})
	want := map[string]bool{
		"x": true, "0": true, "-1": true,
		"not(x)": true, "shl(x)": true, "shr(x)": true,
		"and(x, x)": true, "or(x, x)": true, "xor(x, x)": true,
	}
	if len(canons) != len(want) {
		t.Fatalf("enumerated %d programs %v, want %d", len(canons), canons, len(want))
	}
	for _, c := range canons {
		if !want[c] {
			t.Errorf("unexpected program %q", c)
		}
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	Enumerate(ModelSet, 1, 3, modelConsts, func(p *Program) bool {
		c := p.Canon()
		if seen[c] {
			t.Fatalf("duplicate canonical program %q", c)
		}
		seen[c] = true
		return true
	})
	if len(seen) < 50 {
		t.Errorf("only %d programs up to size 3", len(seen))
	}
}

func TestEnumerateRespectsSizeBound(t *testing.T) {
	Enumerate(ModelSet, 1, 3, modelConsts, func(p *Program) bool {
		if p.BodyLen() > 3 {
			t.Fatalf("enumerated %q with body %d > bound 3", p.Canon(), p.BodyLen())
		}
		return true
	})
}

func TestEnumerateFindsModelSolution(t *testing.T) {
	// The minimal solution of the Section 4 problem or(shl(x), x)
	// needs exactly two instructions; exhaustive enumeration must find
	// a semantically equivalent program at body size 2 and none at
	// size <= 1.
	target := func(x uint64) uint64 { return (x << 1) | x }
	probes := []uint64{0, 1, 2, 5, 0xFF, 0x8000000000000000, ^uint64(0), 0x123456789abcdef}
	matches := func(p *Program) bool {
		for _, x := range probes {
			if p.Output([]uint64{x}) != target(x) {
				return false
			}
		}
		return true
	}
	bestSize := 1 << 30
	Enumerate(ModelSet, 1, 2, modelConsts, func(p *Program) bool {
		if matches(p) && p.BodyLen() < bestSize {
			bestSize = p.BodyLen()
		}
		return true
	})
	if bestSize != 2 {
		t.Errorf("minimal model solution found at size %d, want 2", bestSize)
	}
	// And no solution exists with a single body node.
	Enumerate(ModelSet, 1, 1, modelConsts, func(p *Program) bool {
		if matches(p) {
			t.Errorf("impossible size-1 solution %q", p.Canon())
		}
		return true
	})
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	Enumerate(ModelSet, 1, 3, modelConsts, func(*Program) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop ignored: saw %d programs", n)
	}
}

func TestCountProgramsGrowth(t *testing.T) {
	c1 := CountPrograms(ModelSet, 1, 1, modelConsts)
	c2 := CountPrograms(ModelSet, 1, 2, modelConsts)
	c3 := CountPrograms(ModelSet, 1, 3, modelConsts)
	if !(c1 < c2 && c2 < c3) {
		t.Errorf("counts not growing: %d, %d, %d", c1, c2, c3)
	}
	t.Logf("model dialect, 1 input: %d / %d / %d canonical programs at size 1/2/3", c1, c2, c3)
}

func TestEnumerateSharedSubterms(t *testing.T) {
	// Programs like xor(shl(x), shl(x)) share the shl node; the merge
	// must deduplicate it so the body size is 2, not 3, and such
	// programs therefore appear at size 2.
	found := false
	Enumerate(ModelSet, 1, 2, modelConsts, func(p *Program) bool {
		if p.Canon() == "xor(shl(x), shl(x))" {
			found = true
			if p.BodyLen() != 2 {
				t.Errorf("shared subterm program has body %d, want 2", p.BodyLen())
			}
			return false
		}
		return true
	})
	if !found {
		t.Error("xor(shl(x), shl(x)) not enumerated at size 2")
	}
}
