package plan

import (
	mathbits "math/bits"

	"stochsyn/internal/prog"
)

// A kernel computes one node's value column for suite cases [c0, c1).
// dst is the destination column; a and b are the resolved operand
// columns (b is nil for unary and immediate forms, a is nil for
// immediate-left forms); imm carries a constant operand folded at
// compile time. Every kernel body is the corresponding evalOp arm
// applied per case in case order, so a compiled tape is bit-identical
// to the interpreted engine by construction (TestKernelsMatchEvalOp
// pins this for every opcode and operand shape).
//
// Kernels come in up to three fusion variants per opcode, selected by
// the compiler from the fusion table below:
//
//	VV — both operands read from columns (the general form)
//	VI — right operand is a compile-time constant (imm); invariant
//	     work such as shift-count masking and divide-by-zero checks is
//	     hoisted out of the case loop
//	IV — left operand is a compile-time constant; commutative opcodes
//	     have no IV entry because the compiler swaps them into VI form
type kernel func(dst, a, b []uint64, imm uint64, c0, c1 int)

// Kernels is one fusion-table row: the kernel variants of a single
// opcode. The zero value (pseudo-ops) compiles through dedicated
// fill/copy kernels instead. cmd/repolint check 6 requires every
// prog.Op to appear as an explicit key in the [prog.NumOps]Kernels
// table, so adding an opcode without deciding its kernels is a lint
// failure, not a latent nil-kernel panic.
type Kernels struct {
	VV kernel
	VI kernel
	IV kernel
}

// commutative marks opcodes for which op(a, b) == op(b, a) for all
// values, letting the compiler serve an immediate left operand with
// the VI kernel (operands swapped) instead of a dedicated IV one.
var commutative = [prog.NumOps]bool{
	prog.OpAdd: true, prog.OpMul: true, prog.OpAnd: true, prog.OpOr: true,
	prog.OpXor: true, prog.OpEq: true,
	prog.OpAdd32: true, prog.OpMul32: true, prog.OpAnd32: true,
	prog.OpOr32: true, prog.OpXor32: true,
	prog.OpMAnd: true, prog.OpMOr: true, prog.OpMXor: true,
}

// kFill broadcasts a compile-time constant: constant nodes, fully
// folded operands, and absint-proven singleton nodes.
func kFill(dst, _, _ []uint64, imm uint64, c0, c1 int) {
	d := dst[c0:c1]
	for c := range d {
		d[c] = imm
	}
}

// kCopy copies from a source column. Defensive only: body nodes are
// never inputs (Validate forbids it), but a program that carries one
// anyway compiles to a copy of the precomputed input column, matching
// the interpreted engine's fallback.
func kCopy(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	copy(dst[c0:c1], a[c0:c1])
}

// 64-bit binary, VV forms.

func vvAdd(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = av[c] + bv[c]
	}
}

func vvSub(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = av[c] - bv[c]
	}
}

func vvMul(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = av[c] * bv[c]
	}
}

func vvDivU(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		if bv[c] == 0 {
			d[c] = 0
		} else {
			d[c] = av[c] / bv[c]
		}
	}
}

func vvRemU(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		if bv[c] == 0 {
			d[c] = 0
		} else {
			d[c] = av[c] % bv[c]
		}
	}
}

func vvDivS(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		sa, sb := int64(av[c]), int64(bv[c])
		if sb == 0 || (sa == -1<<63 && sb == -1) {
			d[c] = 0
		} else {
			d[c] = uint64(sa / sb)
		}
	}
}

func vvRemS(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		sa, sb := int64(av[c]), int64(bv[c])
		if sb == 0 || (sa == -1<<63 && sb == -1) {
			d[c] = 0
		} else {
			d[c] = uint64(sa % sb)
		}
	}
}

func vvAnd(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = av[c] & bv[c]
	}
}

func vvOr(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = av[c] | bv[c]
	}
}

func vvXor(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = av[c] ^ bv[c]
	}
}

func vvShl(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	av, bv = av[:len(d)], bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = av[c+0] << (bv[c+0] & 63)
		d[c+1] = av[c+1] << (bv[c+1] & 63)
		d[c+2] = av[c+2] << (bv[c+2] & 63)
		d[c+3] = av[c+3] << (bv[c+3] & 63)
	}
	for ; c < len(d); c++ {
		d[c] = av[c] << (bv[c] & 63)
	}
}

func vvShr(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	av, bv = av[:len(d)], bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = av[c+0] >> (bv[c+0] & 63)
		d[c+1] = av[c+1] >> (bv[c+1] & 63)
		d[c+2] = av[c+2] >> (bv[c+2] & 63)
		d[c+3] = av[c+3] >> (bv[c+3] & 63)
	}
	for ; c < len(d); c++ {
		d[c] = av[c] >> (bv[c] & 63)
	}
}

func vvSar(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	av, bv = av[:len(d)], bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = uint64(int64(av[c+0]) >> (bv[c+0] & 63))
		d[c+1] = uint64(int64(av[c+1]) >> (bv[c+1] & 63))
		d[c+2] = uint64(int64(av[c+2]) >> (bv[c+2] & 63))
		d[c+3] = uint64(int64(av[c+3]) >> (bv[c+3] & 63))
	}
	for ; c < len(d); c++ {
		d[c] = uint64(int64(av[c]) >> (bv[c] & 63))
	}
}

func vvRol(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	av, bv = av[:len(d)], bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = mathbits.RotateLeft64(av[c+0], int(bv[c+0]&63))
		d[c+1] = mathbits.RotateLeft64(av[c+1], int(bv[c+1]&63))
		d[c+2] = mathbits.RotateLeft64(av[c+2], int(bv[c+2]&63))
		d[c+3] = mathbits.RotateLeft64(av[c+3], int(bv[c+3]&63))
	}
	for ; c < len(d); c++ {
		d[c] = mathbits.RotateLeft64(av[c], int(bv[c]&63))
	}
}

func vvRor(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	av, bv = av[:len(d)], bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = mathbits.RotateLeft64(av[c+0], -int(bv[c+0]&63))
		d[c+1] = mathbits.RotateLeft64(av[c+1], -int(bv[c+1]&63))
		d[c+2] = mathbits.RotateLeft64(av[c+2], -int(bv[c+2]&63))
		d[c+3] = mathbits.RotateLeft64(av[c+3], -int(bv[c+3]&63))
	}
	for ; c < len(d); c++ {
		d[c] = mathbits.RotateLeft64(av[c], -int(bv[c]&63))
	}
}

func vvEq(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		if av[c] == bv[c] {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

func vvUlt(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		if av[c] < bv[c] {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

func vvSlt(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		if int64(av[c]) < int64(bv[c]) {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

// 64-bit binary, VI forms (right operand folded to imm).

func viAdd(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] + imm
	}
}

func viSub(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] - imm
	}
}

func viMul(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] * imm
	}
}

func viDivU(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	if imm == 0 {
		for c := range d {
			d[c] = 0
		}
		return
	}
	for c := range d {
		d[c] = av[c] / imm
	}
}

func viRemU(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	if imm == 0 {
		for c := range d {
			d[c] = 0
		}
		return
	}
	for c := range d {
		d[c] = av[c] % imm
	}
}

func viDivS(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	sb := int64(imm)
	switch {
	case sb == 0:
		for c := range d {
			d[c] = 0
		}
	case sb == -1:
		// a / -1 == -a, except MinInt64 / -1 which traps (-> 0).
		for c := range d {
			if sa := int64(av[c]); sa == -1<<63 {
				d[c] = 0
			} else {
				d[c] = uint64(-sa)
			}
		}
	default:
		for c := range d {
			d[c] = uint64(int64(av[c]) / sb)
		}
	}
}

func viRemS(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	sb := int64(imm)
	if sb == 0 || sb == -1 {
		// a % -1 == 0 for every a, including the trapping MinInt64 case
		// (which evalOp also defines as 0).
		for c := range d {
			d[c] = 0
		}
		return
	}
	for c := range d {
		d[c] = uint64(int64(av[c]) % sb)
	}
}

func viAnd(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] & imm
	}
}

func viOr(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] | imm
	}
}

func viXor(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] ^ imm
	}
}

func viShl(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := imm & 63
	for c := range d {
		d[c] = av[c] << s
	}
}

func viShr(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := imm & 63
	for c := range d {
		d[c] = av[c] >> s
	}
}

func viSar(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := imm & 63
	for c := range d {
		d[c] = uint64(int64(av[c]) >> s)
	}
}

func viRol(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := int(imm & 63)
	for c := range d {
		d[c] = mathbits.RotateLeft64(av[c], s)
	}
}

func viRor(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := -int(imm & 63)
	for c := range d {
		d[c] = mathbits.RotateLeft64(av[c], s)
	}
}

func viEq(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		if av[c] == imm {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

func viUlt(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		if av[c] < imm {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

func viSlt(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	sb := int64(imm)
	for c := range d {
		if int64(av[c]) < sb {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

// 64-bit binary, IV forms (left operand folded to imm; commutative
// opcodes instead swap into the VI kernel).

func ivSub(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = imm - bv[c]
	}
}

func ivDivU(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	for c := range d {
		if bv[c] == 0 {
			d[c] = 0
		} else {
			d[c] = imm / bv[c]
		}
	}
}

func ivRemU(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	for c := range d {
		if bv[c] == 0 {
			d[c] = 0
		} else {
			d[c] = imm % bv[c]
		}
	}
}

func ivDivS(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	sa := int64(imm)
	for c := range d {
		sb := int64(bv[c])
		if sb == 0 || (sa == -1<<63 && sb == -1) {
			d[c] = 0
		} else {
			d[c] = uint64(sa / sb)
		}
	}
}

func ivRemS(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	sa := int64(imm)
	for c := range d {
		sb := int64(bv[c])
		if sb == 0 || (sa == -1<<63 && sb == -1) {
			d[c] = 0
		} else {
			d[c] = uint64(sa % sb)
		}
	}
}

func ivShl(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	bv = bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = imm << (bv[c+0] & 63)
		d[c+1] = imm << (bv[c+1] & 63)
		d[c+2] = imm << (bv[c+2] & 63)
		d[c+3] = imm << (bv[c+3] & 63)
	}
	for ; c < len(d); c++ {
		d[c] = imm << (bv[c] & 63)
	}
}

func ivShr(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	bv = bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = imm >> (bv[c+0] & 63)
		d[c+1] = imm >> (bv[c+1] & 63)
		d[c+2] = imm >> (bv[c+2] & 63)
		d[c+3] = imm >> (bv[c+3] & 63)
	}
	for ; c < len(d); c++ {
		d[c] = imm >> (bv[c] & 63)
	}
}

func ivSar(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	bv = bv[:len(d)]
	sa := int64(imm)
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = uint64(sa >> (bv[c+0] & 63))
		d[c+1] = uint64(sa >> (bv[c+1] & 63))
		d[c+2] = uint64(sa >> (bv[c+2] & 63))
		d[c+3] = uint64(sa >> (bv[c+3] & 63))
	}
	for ; c < len(d); c++ {
		d[c] = uint64(sa >> (bv[c] & 63))
	}
}

func ivRol(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	bv = bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = mathbits.RotateLeft64(imm, int(bv[c+0]&63))
		d[c+1] = mathbits.RotateLeft64(imm, int(bv[c+1]&63))
		d[c+2] = mathbits.RotateLeft64(imm, int(bv[c+2]&63))
		d[c+3] = mathbits.RotateLeft64(imm, int(bv[c+3]&63))
	}
	for ; c < len(d); c++ {
		d[c] = mathbits.RotateLeft64(imm, int(bv[c]&63))
	}
}

func ivRor(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	bv = bv[:len(d)]
	c := 0
	for ; c+4 <= len(d); c += 4 {
		d[c+0] = mathbits.RotateLeft64(imm, -int(bv[c+0]&63))
		d[c+1] = mathbits.RotateLeft64(imm, -int(bv[c+1]&63))
		d[c+2] = mathbits.RotateLeft64(imm, -int(bv[c+2]&63))
		d[c+3] = mathbits.RotateLeft64(imm, -int(bv[c+3]&63))
	}
	for ; c < len(d); c++ {
		d[c] = mathbits.RotateLeft64(imm, -int(bv[c]&63))
	}
}

func ivUlt(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	for c := range d {
		if imm < bv[c] {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

func ivSlt(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	sa := int64(imm)
	for c := range d {
		if sa < int64(bv[c]) {
			d[c] = 1
		} else {
			d[c] = 0
		}
	}
}

// 64-bit unary.

func vvNot(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = ^av[c]
	}
}

func vvNeg(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = -av[c]
	}
}

func vvBswap(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = mathbits.ReverseBytes64(av[c])
	}
}

func vvPopcnt(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(mathbits.OnesCount64(av[c]))
	}
}

func vvClz(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(mathbits.LeadingZeros64(av[c]))
	}
}

func vvCtz(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(mathbits.TrailingZeros64(av[c]))
	}
}

func vvSext8(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(int64(int8(av[c])))
	}
}

func vvSext16(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(int64(int16(av[c])))
	}
}

func vvSext32(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(int64(int32(av[c])))
	}
}

func vvZext8(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(uint8(av[c]))
	}
}

func vvZext16(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(uint16(av[c]))
	}
}

func vvZext32(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]))
	}
}

// 32-bit binary, VV forms.

func vvAdd32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) + uint32(bv[c]))
	}
}

func vvSub32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) - uint32(bv[c]))
	}
}

func vvMul32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) * uint32(bv[c]))
	}
}

func vvAnd32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) & uint32(bv[c]))
	}
}

func vvOr32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) | uint32(bv[c]))
	}
}

func vvXor32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) ^ uint32(bv[c]))
	}
}

func vvShl32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) << (bv[c] & 31))
	}
}

func vvShr32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(av[c]) >> (bv[c] & 31))
	}
}

func vvSar32(dst, a, b []uint64, _ uint64, c0, c1 int) {
	d, av, bv := dst[c0:c1], a[c0:c1], b[c0:c1]
	for c := range d {
		d[c] = uint64(uint32(int32(av[c]) >> (bv[c] & 31)))
	}
}

// 32-bit binary, VI forms.

func viAdd32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(uint32(av[c]) + i32)
	}
}

func viSub32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(uint32(av[c]) - i32)
	}
}

func viMul32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(uint32(av[c]) * i32)
	}
}

func viAnd32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(uint32(av[c]) & i32)
	}
}

func viOr32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(uint32(av[c]) | i32)
	}
}

func viXor32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(uint32(av[c]) ^ i32)
	}
}

func viShl32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := imm & 31
	for c := range d {
		d[c] = uint64(uint32(av[c]) << s)
	}
}

func viShr32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := imm & 31
	for c := range d {
		d[c] = uint64(uint32(av[c]) >> s)
	}
}

func viSar32(dst, a, _ []uint64, imm uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	s := imm & 31
	for c := range d {
		d[c] = uint64(uint32(int32(av[c]) >> s))
	}
}

// 32-bit binary, IV forms.

func ivSub32(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(i32 - uint32(bv[c]))
	}
}

func ivShl32(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(i32 << (bv[c] & 31))
	}
}

func ivShr32(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	i32 := uint32(imm)
	for c := range d {
		d[c] = uint64(i32 >> (bv[c] & 31))
	}
}

func ivSar32(dst, _, b []uint64, imm uint64, c0, c1 int) {
	d, bv := dst[c0:c1], b[c0:c1]
	i32 := int32(imm)
	for c := range d {
		d[c] = uint64(uint32(i32 >> (bv[c] & 31)))
	}
}

// 32-bit unary.

func vvNot32(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(^uint32(av[c]))
	}
}

func vvNeg32(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = uint64(-uint32(av[c]))
	}
}

// Model-dialect shifts (shift by exactly one bit).

func vvMShl(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] << 1
	}
}

func vvMShr(dst, a, _ []uint64, _ uint64, c0, c1 int) {
	d, av := dst[c0:c1], a[c0:c1]
	for c := range d {
		d[c] = av[c] >> 1
	}
}

// fusion is the compiler's kernel table, indexed by opcode. Every
// prog.Op must appear as an explicit key — cmd/repolint check 6
// enforces totality exactly as check 5 does for the absint transfer
// tables — so a new opcode cannot silently compile to a nil kernel.
// Pseudo-ops take the zero row: the compiler routes them through the
// dedicated fill/copy kernels before consulting the table. The model
// bitwise ops share kernels with their full-set counterparts (their
// evalOp arms are identical); the model shifts are unary.
var fusion = [prog.NumOps]Kernels{
	prog.OpInvalid: {},
	prog.OpInput:   {},
	prog.OpConst:   {},

	prog.OpAdd:  {VV: vvAdd, VI: viAdd},
	prog.OpSub:  {VV: vvSub, VI: viSub, IV: ivSub},
	prog.OpMul:  {VV: vvMul, VI: viMul},
	prog.OpDivU: {VV: vvDivU, VI: viDivU, IV: ivDivU},
	prog.OpRemU: {VV: vvRemU, VI: viRemU, IV: ivRemU},
	prog.OpDivS: {VV: vvDivS, VI: viDivS, IV: ivDivS},
	prog.OpRemS: {VV: vvRemS, VI: viRemS, IV: ivRemS},
	prog.OpAnd:  {VV: vvAnd, VI: viAnd},
	prog.OpOr:   {VV: vvOr, VI: viOr},
	prog.OpXor:  {VV: vvXor, VI: viXor},
	prog.OpShl:  {VV: vvShl, VI: viShl, IV: ivShl},
	prog.OpShr:  {VV: vvShr, VI: viShr, IV: ivShr},
	prog.OpSar:  {VV: vvSar, VI: viSar, IV: ivSar},
	prog.OpRol:  {VV: vvRol, VI: viRol, IV: ivRol},
	prog.OpRor:  {VV: vvRor, VI: viRor, IV: ivRor},
	prog.OpEq:   {VV: vvEq, VI: viEq},
	prog.OpUlt:  {VV: vvUlt, VI: viUlt, IV: ivUlt},
	prog.OpSlt:  {VV: vvSlt, VI: viSlt, IV: ivSlt},

	prog.OpNot:    {VV: vvNot},
	prog.OpNeg:    {VV: vvNeg},
	prog.OpBswap:  {VV: vvBswap},
	prog.OpPopcnt: {VV: vvPopcnt},
	prog.OpClz:    {VV: vvClz},
	prog.OpCtz:    {VV: vvCtz},
	prog.OpSext8:  {VV: vvSext8},
	prog.OpSext16: {VV: vvSext16},
	prog.OpSext32: {VV: vvSext32},
	prog.OpZext8:  {VV: vvZext8},
	prog.OpZext16: {VV: vvZext16},
	prog.OpZext32: {VV: vvZext32},

	prog.OpAdd32: {VV: vvAdd32, VI: viAdd32},
	prog.OpSub32: {VV: vvSub32, VI: viSub32, IV: ivSub32},
	prog.OpMul32: {VV: vvMul32, VI: viMul32},
	prog.OpAnd32: {VV: vvAnd32, VI: viAnd32},
	prog.OpOr32:  {VV: vvOr32, VI: viOr32},
	prog.OpXor32: {VV: vvXor32, VI: viXor32},
	prog.OpShl32: {VV: vvShl32, VI: viShl32, IV: ivShl32},
	prog.OpShr32: {VV: vvShr32, VI: viShr32, IV: ivShr32},
	prog.OpSar32: {VV: vvSar32, VI: viSar32, IV: ivSar32},

	prog.OpNot32: {VV: vvNot32},
	prog.OpNeg32: {VV: vvNeg32},

	prog.OpMAnd: {VV: vvAnd, VI: viAnd},
	prog.OpMOr:  {VV: vvOr, VI: viOr},
	prog.OpMXor: {VV: vvXor, VI: viXor},
	prog.OpMNot: {VV: vvNot},
	prog.OpMShl: {VV: vvMShl},
	prog.OpMShr: {VV: vvMShr},
}
