// Package plan compiles candidate programs into flat evaluation
// plans: linear instruction tapes of fused column kernels that the
// search inner loop executes with no per-case opcode dispatch and no
// allocation.
//
// The interpreted incremental engine (prog.EvalState, DESIGN.md §10)
// already reuses committed value columns across proposals, but still
// pays one opcode switch per dirty column per chunk and one evalOp
// call per case for the opcodes without a dedicated loop. The plan
// layer goes one step further down ROADMAP item 1's ladder: a full
// compile at Reset turns the program into a tape of op-specialized
// kernels over pre-resolved operand columns, with constant operands
// folded to immediates via the absint facts of
// internal/prog/analysis/absint (sound over the suite's input set),
// and an incremental recompile path that re-lowers only the
// journal-dirty nodes on each move. Dirty nodes a proposal leaves
// unreachable from the root are elided from the cost path entirely
// (ReachableFrom mask) and materialized only if the move commits.
//
// State is a drop-in sibling of prog.EvalState: same lifecycle
// (Reset / Begin / EvalRange / Commit / Abort), same double-buffered
// column discipline (header-swap Commit, free Abort), and
// bit-identical value columns by construction — every kernel body is
// the corresponding evalOp arm, folding is exact, and case order is
// preserved. The three-way differential harness in internal/search
// (FuzzIncrementalEval) pins legacy, interpreted, and compiled arms
// to identical trajectories.
//
// Full compiles are amortized by a shape-keyed recipe cache shared by
// all States on the same suite (restart-heavy searches re-seed from
// identical or previously seen programs constantly), so a checkpoint
// Restore or restart usually re-binds a cached tape instead of
// re-lowering.
package plan

import (
	mathbits "math/bits"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis/absint"
	"stochsyn/internal/testcase"
)

// Stats counts the compiler's work: full tape compiles (cache
// misses), cache hits, incremental tape patches (dirty nodes
// re-lowered across proposals), and nodes lowered to a fused form
// (constant-folded whole, or an immediate-operand kernel variant).
type Stats struct {
	Compiles   int64
	CacheHits  int64
	Patches    int64
	FusedNodes int64
}

// Sub returns the element-wise difference s - o (for delta flushes).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Compiles:   s.Compiles - o.Compiles,
		CacheHits:  s.CacheHits - o.CacheHits,
		Patches:    s.Patches - o.Patches,
		FusedNodes: s.FusedNodes - o.FusedNodes,
	}
}

// tapeEntry is one bound instruction of the proposal tape: a kernel
// plus its resolved destination and operand columns and folded
// immediate. Fully bound at Begin so tape execution touches no other
// engine state.
type tapeEntry struct {
	kern kernel
	dst  []uint64
	a, b []uint64
	imm  uint64
}

// State is the compiled evaluation engine. It mirrors prog.EvalState
// field for field where the interpreted engine's layout is already
// right (committed columns + proposal shadow columns over one backing
// array) and replaces interpretation with tape execution. A State is
// single-threaded, owned by one search run.
type State struct {
	p      *prog.Program
	suite  *testcase.Suite
	ncases int

	// cols[i] is the committed value column of node i; prop[i] the
	// proposal shadow. Commit swaps headers, never copies values.
	cols [prog.MaxNodes][]uint64
	prop [prog.MaxNodes][]uint64

	// inFacts are the suite's input facts, computed once; facts is the
	// Analyze scratch buffer reused across full compiles.
	inFacts []absint.Value
	facts   []absint.Value

	// users[i] is the bitmask of committed-program nodes that read
	// node i, rebuilt at Reset and Commit. Begin closes the journal's
	// dirty seeds over transitive users with a bitmask worklist over
	// these masks instead of rescanning the whole program per proposal
	// (the interpreted engine's approach); see Begin for why the
	// committed masks stay sound against the edited proposal.
	// Sized 32 (not MaxNodes) so that indices produced by
	// bits.TrailingZeros32 masked with &31 are provably in range and
	// the hot Begin loops compile without bounds checks.
	users [32]uint32

	// pops[i] caches the facts-free (patch-path) lowering of committed
	// node i, with pargs[i] holding the bitmask of its pre-fold
	// argument indices and popsFused marking immediate-form lowerings.
	// Begin re-lowers only the nodes the cache cannot serve: journal
	// seeds (their op/args changed) and nodes with a seed argument (a
	// seed arg's constness may have changed, invalidating the cached
	// syntactic fold). Everything else — the bulk of each dirty closure
	// — reuses the cached op. The cache is maintained at Reset (full
	// build) and Commit (dirty slots from this proposal's lowerings,
	// with an index remap after a compacting GC); aborted proposals
	// never touch it.
	pops      [32]compiledOp
	pargs     [32]uint32
	popsFused uint32

	// Active proposal state (between Begin and Commit/Abort). tape
	// holds one fully bound entry per live dirty node (read by the
	// cost path); dtape holds the dirty nodes the proposal leaves
	// unreachable from the root — EvalRange never runs those (they
	// cannot affect the cost, and on a rejected proposal they are
	// never computed at all) and Commit materializes them so the
	// committed matrix stays exact for every node. Both tapes are in
	// topological order.
	j         *prog.Journal
	dirty     uint32
	dirtyList [32]int32
	tape      [prog.MaxNodes]tapeEntry
	dtape     [prog.MaxNodes]tapeEntry
	rootCol   []uint64
	ndirty    int
	nlive     int
	ndefer    int

	// Begin scratch, indexed by proposal node index; only slots in the
	// active dirty set are meaningful. ops holds this proposal's
	// lowerings (Commit folds them back into pops), opsFused the fused
	// flags, am the dirty-argument masks driving the topological
	// ready-scan and the root-reachability sweep.
	ops      [32]compiledOp
	opsFused uint32
	am       [32]uint32

	estats prog.EvalStats
	pstats Stats
}

// New builds a compiled engine for the suite, with the permanent
// input-node columns filled in. Call Reset to bind a program.
func New(s *testcase.Suite) *State {
	n := s.Len()
	e := &State{suite: s, ncases: n}
	backing := make([]uint64, 2*prog.MaxNodes*n)
	for i := 0; i < prog.MaxNodes; i++ {
		e.cols[i] = backing[i*n : (i+1)*n : (i+1)*n]
		e.prop[i] = backing[(prog.MaxNodes+i)*n : (prog.MaxNodes+i+1)*n : (prog.MaxNodes+i+1)*n]
	}
	for i := 0; i < s.NumInputs; i++ {
		col := e.cols[i]
		for c := range s.Cases {
			col[c] = s.Cases[c].Inputs[i]
		}
	}
	e.inFacts = absint.InputFacts(s)
	return e
}

// Suite returns the suite the engine evaluates against.
func (e *State) Suite() *testcase.Suite { return e.suite }

// Program returns the program the committed columns describe.
func (e *State) Program() *prog.Program { return e.p }

// Stats returns the cumulative evaluation-work counters, with the
// same semantics as prog.EvalState.Stats (proposal path only).
func (e *State) Stats() prog.EvalStats { return e.estats }

// PlanStats returns the cumulative compilation counters.
func (e *State) PlanStats() Stats { return e.pstats }

// RootColumn returns the committed value column of the program root.
func (e *State) RootColumn() []uint64 { return e.cols[e.p.Root] }

// CaseValues writes the committed value of every node on suite case c
// into dst, the engine counterpart of Program.Eval's all-node output
// (used by the redundancy move's signature probes).
func (e *State) CaseValues(c int, dst []uint64) {
	for i := 0; i < len(e.p.Nodes); i++ {
		dst[i] = e.cols[i][c]
	}
}

// Reset binds p, compiles it to a full tape (or re-binds a cached
// recipe for a previously seen shape), and executes the tape to
// populate every committed column. Used at search start, restarts,
// and checkpoint restores; the incremental path never needs it.
func (e *State) Reset(p *prog.Program) {
	if p.NumInputs != e.suite.NumInputs {
		panic("plan: State.Reset program/suite input arity mismatch")
	}
	e.p = p
	e.j = nil
	rec, hit := lookupRecipe(e, p)
	if hit {
		e.pstats.CacheHits++
	} else {
		e.pstats.Compiles++
	}
	e.pstats.FusedNodes += rec.fused
	for _, i := range rec.order {
		if int(i) < p.NumInputs {
			continue // permanent, precomputed
		}
		op := &rec.ops[i]
		var a, b []uint64
		if op.argA >= 0 {
			a = e.cols[op.argA]
		}
		if op.argB >= 0 {
			b = e.cols[op.argB]
		}
		op.kern(e.cols[i], a, b, op.imm, 0, e.ncases)
	}
	e.rebuildUsers()
	e.rebuildPops()
}

// compileFull lowers every node of p into a shareable recipe, folding
// absint facts: a node the analysis pins to a single value over the
// suite's inputs compiles to a constant fill, and an operand pinned
// the same way folds to an immediate-form kernel. Facts are sound for
// exactly the suite's cases (InputFacts is their join), so folding is
// value-preserving on every column the engine computes.
func (e *State) compileFull(p *prog.Program) *recipe {
	e.facts = absint.Analyze(p, e.inFacts, e.facts)
	rec := &recipe{order: append([]int32(nil), p.TopoOrder()...), ops: make([]compiledOp, len(p.Nodes))}
	for i := range p.Nodes {
		if i < p.NumInputs {
			continue
		}
		var fused bool
		rec.ops[i], fused = compileNode(p, int32(i), e.facts)
		if fused {
			rec.fused++
		}
	}
	return rec
}

// compiledOp is one unbound tape instruction: the kernel and the node
// indices of its column operands (-1 when folded to imm or unused).
type compiledOp struct {
	kern kernel
	argA int32
	argB int32
	imm  uint64
}

// exactVal reports a compile-time-known constant value for node n. On
// the full-compile path (facts non-nil) it consults the absint facts;
// on the incremental patch path (facts nil) only syntactic OpConst
// nodes fold — running the analysis per proposal would cost more than
// it saves, and the facts buffer is stale against the edited program.
func exactVal(p *prog.Program, facts []absint.Value, n int32) (uint64, bool) {
	if facts != nil {
		return facts[n].Exact()
	}
	if nd := &p.Nodes[n]; nd.Op == prog.OpConst {
		return nd.Val, true
	}
	return 0, false
}

// compileNode lowers node i to a kernel and operand bindings, folding
// constants known to exactVal. Returns the lowered op and whether any
// folding happened (for the fused-nodes counter).
func compileNode(p *prog.Program, i int32, facts []absint.Value) (compiledOp, bool) {
	nd := &p.Nodes[i]
	switch nd.Op {
	case prog.OpConst:
		return compiledOp{kern: kFill, argA: -1, argB: -1, imm: nd.Val}, false
	case prog.OpInput:
		// Defensive, mirroring the interpreted engine: body nodes are
		// never inputs, but compile to a copy of the input column if
		// one lands here.
		return compiledOp{kern: kCopy, argA: int32(nd.Val), argB: -1}, false
	}
	if v, ok := exactVal(p, facts, i); ok {
		// The whole node is pinned to one value across the suite.
		return compiledOp{kern: kFill, argA: -1, argB: -1, imm: v}, true
	}
	ks := &fusion[nd.Op]
	if ks.VV == nil {
		panic("plan: no kernel for opcode " + nd.Op.String())
	}
	a := nd.Args[0]
	if nd.Op.Arity() == 1 {
		if va, ok := exactVal(p, facts, a); ok {
			return compiledOp{kern: kFill, argA: -1, argB: -1, imm: prog.EvalOp(nd.Op, va, 0)}, true
		}
		return compiledOp{kern: ks.VV, argA: a, argB: -1}, false
	}
	b := nd.Args[1]
	va, aok := exactVal(p, facts, a)
	vb, bok := exactVal(p, facts, b)
	switch {
	case aok && bok:
		return compiledOp{kern: kFill, argA: -1, argB: -1, imm: prog.EvalOp(nd.Op, va, vb)}, true
	case bok && ks.VI != nil:
		return compiledOp{kern: ks.VI, argA: a, argB: -1, imm: vb}, true
	case aok && commutative[nd.Op] && ks.VI != nil:
		return compiledOp{kern: ks.VI, argA: b, argB: -1, imm: va}, true
	case aok && ks.IV != nil:
		return compiledOp{kern: ks.IV, argA: -1, argB: b, imm: va}, true
	}
	return compiledOp{kern: ks.VV, argA: a, argB: b}, false
}

// rebuildUsers recomputes the committed user masks from the bound
// program (O(nodes), two mask ORs per node — cheaper than one
// proposal's worth of full-program closure scans).
func (e *State) rebuildUsers() {
	for i := range e.users {
		e.users[i] = 0
	}
	p := e.p
	for i := range p.Nodes {
		n := &p.Nodes[i]
		for a := 0; a < n.Op.Arity(); a++ {
			e.users[n.Args[a]] |= 1 << uint(i)
		}
	}
}

// rebuildPops relowers every committed body node into the patch-path
// cache: the facts-free compiledOp, the pre-fold argument mask, and
// the fused bit. O(nodes); runs at Reset and after a compacting
// Commit, the two points where committed indices change wholesale.
func (e *State) rebuildPops() {
	p := e.p
	e.popsFused = 0
	for i := p.NumInputs; i < len(p.Nodes); i++ {
		op, fused := compileNode(p, int32(i), nil)
		e.pops[i] = op
		if fused {
			e.popsFused |= 1 << uint(i)
		}
		n := &p.Nodes[i]
		var pa uint32
		for a := 0; a < n.Op.Arity(); a++ {
			pa |= 1 << uint(n.Args[a])
		}
		e.pargs[i] = pa
	}
}

// Begin starts a proposal against the journaled in-place edit: it
// closes the journal's dirty seeds over transitive users, lowers each
// dirty node (reusing the pops cache wherever the node and its
// arguments are unedited), orders the closure topologically, and binds
// fully resolved proposal tapes (operand columns resolved to the
// shadow buffer for dirty operands, the committed column through the
// journal's index map otherwise), split into a live tape the cost
// path executes and a deferred tape of root-unreachable nodes that
// Commit materializes.
//
// The closure runs as a bitmask worklist over the committed user
// masks rather than a scan of the whole program. The committed masks
// stay sound against the edited proposal: an edge can only appear or
// disappear by editing the node that owns it, and every edited node
// is a journal seed (already dirty), so a stale mask bit only ever
// re-marks a node the closure holds anyway, and a missing bit only
// ever points at a seed. Compaction renumbers nodes mid-edit; the
// worklist then routes every hop through the journal's index map and
// its inverse instead of touching Program.TopoOrder.
//
// Ordering and deferral both run on the post-fold dirty-argument
// masks (e.am): an operand folded to an immediate is no longer a
// column dependency, so a dirty constant all of whose users folded it
// away drops off the live tape entirely and is materialized at
// Commit like any other deferred node.
func (e *State) Begin(j *prog.Journal) {
	e.j = j
	p := e.p
	seeds := j.Dirty()
	dirty := seeds
	compacted := j.Compacted()
	nd := 0
	if dirty != 0 {
		var inv [prog.MaxNodes]int32
		seedsC := seeds // the seed set in committed indexing
		if !compacted {
			// Journal and committed indices align: propagate straight
			// through the committed masks.
			for work := dirty; work != 0; {
				i := mathbits.TrailingZeros32(work) & 31
				work &^= 1 << uint(i)
				nu := e.users[i] &^ dirty
				dirty |= nu
				work |= nu
			}
		} else {
			// A GC compaction renumbered the proposal mid-edit. The
			// masks still describe committed indices, so build the
			// committed→proposal inverse of the journal's index map
			// once (strictly increasing over survivors) and translate
			// each hop. Removed committed nodes drop out via invOK;
			// appended nodes have no committed users and their real
			// users are edited nodes, i.e. seeds.
			var invOK uint32
			for w := 0; w < len(p.Nodes); w++ {
				if s := j.Src(w); s >= 0 {
					inv[s] = int32(w)
					invOK |= 1 << uint(s)
				}
			}
			seedsC = 0
			for m := seeds; m != 0; {
				i := mathbits.TrailingZeros32(m)
				m &^= 1 << uint(i)
				if s := j.Src(i); s >= 0 {
					seedsC |= 1 << uint(s)
				}
			}
			for work := dirty; work != 0; {
				i := mathbits.TrailingZeros32(work)
				work &^= 1 << uint(i)
				var uc uint32
				if s := j.Src(i); s >= 0 {
					uc = e.users[s] & invOK
				}
				for m := uc; m != 0; {
					c := mathbits.TrailingZeros32(m)
					m &^= 1 << uint(c)
					wb := uint32(1) << uint(inv[c])
					if dirty&wb == 0 {
						dirty |= wb
						work |= wb
					}
				}
			}
		}
		// Lower every dirty node — cache hit unless the node or one of
		// its (pre-fold) arguments is a seed — and record its post-fold
		// dirty-argument mask, which drives both the topological
		// ready-scan and the reachability sweep below as pure bitmask
		// loops.
		e.opsFused = 0
		live := dirty & (uint32(1)<<uint(len(p.Nodes)) - 1)
		for m := live; m != 0; {
			i := mathbits.TrailingZeros32(m) & 31
			bit := uint32(1) << uint(i)
			m &^= bit
			var op compiledOp
			var fused bool
			if !compacted {
				if seeds&bit == 0 && e.pargs[i]&seedsC == 0 {
					op = e.pops[i]
					fused = e.popsFused&bit != 0
				} else {
					op, fused = compileNode(p, int32(i), nil)
				}
			} else if s := j.Src(i); seeds&bit == 0 && s >= 0 && e.pargs[s]&seedsC == 0 {
				op = e.pops[s]
				if op.argA >= 0 {
					op.argA = inv[op.argA]
				}
				if op.argB >= 0 {
					op.argB = inv[op.argB]
				}
				fused = e.popsFused&(1<<uint(s)) != 0
			} else {
				op, fused = compileNode(p, int32(i), nil)
			}
			e.ops[i] = op
			if fused {
				e.opsFused |= bit
				e.pstats.FusedNodes++
			}
			var am uint32
			if op.argA >= 0 {
				am |= 1 << uint(op.argA)
			}
			if op.argB >= 0 {
				am |= 1 << uint(op.argB)
			}
			e.am[i] = am & dirty
		}
		// Order the closure with a ready-scan restricted to the dirty
		// set (typically 2-6 nodes): a node is ready once its dirty
		// arguments are all placed. Clean arguments are committed
		// columns, always available. The mask may carry bits for
		// truncated (dead, since removed) indices; they stay out of the
		// list, matching the interpreted engine's order-based sweep.
		placed := uint32(0)
		for rem := live; rem != 0; {
			progress := false
			for m := rem; m != 0; {
				i := mathbits.TrailingZeros32(m) & 31
				bit := uint32(1) << uint(i)
				m &^= bit
				if e.am[i]&^placed != 0 {
					continue
				}
				e.dirtyList[nd&31] = int32(i)
				nd++
				placed |= bit
				rem &^= bit
				progress = true
			}
			if !progress {
				panic("plan: cycle in dirty closure")
			}
		}
	}
	e.dirty = dirty
	e.ndirty = nd
	// Root reachability restricted to the dirty set. Every user of a
	// dirty node is itself dirty (that is what the closure closes
	// over), so any root-to-dirty-node path runs through dirty nodes
	// only: a dirty node is root-reachable iff the root is dirty and
	// reaches it through dirty users. One backward sweep over the
	// topologically ordered dirty list settles that — no full-graph
	// DFS needed.
	reach := dirty & (1 << uint(p.Root))
	for k := nd - 1; k >= 0; k-- {
		i := int(e.dirtyList[k&31]) & 31
		if reach&(1<<uint(i)) != 0 {
			reach |= e.am[i]
		}
	}
	// Bind the proposal tapes: destination and operand columns resolve
	// once for this proposal's lifetime, live entries and deferred
	// entries each in topological order.
	e.nlive, e.ndefer = 0, 0
	for k := 0; k < nd; k++ {
		i := int(e.dirtyList[k&31]) & 31
		op := &e.ops[i]
		var t *tapeEntry
		if reach&(1<<uint(i)) != 0 {
			t = &e.tape[e.nlive]
			e.nlive++
		} else {
			t = &e.dtape[e.ndefer]
			e.ndefer++
		}
		t.kern = op.kern
		t.dst = e.prop[i]
		t.imm = op.imm
		if a := op.argA; a >= 0 {
			if dirty&(1<<uint(a)) != 0 {
				t.a = e.prop[a]
			} else if !compacted {
				t.a = e.cols[a]
			} else {
				t.a = e.cols[j.Src(int(a))]
			}
		} else {
			t.a = nil
		}
		if b := op.argB; b >= 0 {
			if dirty&(1<<uint(b)) != 0 {
				t.b = e.prop[b]
			} else if !compacted {
				t.b = e.cols[b]
			} else {
				t.b = e.cols[j.Src(int(b))]
			}
		} else {
			t.b = nil
		}
	}
	if dirty&(1<<uint(p.Root)) != 0 {
		e.rootCol = e.prop[p.Root]
	} else if !compacted {
		e.rootCol = e.cols[p.Root]
	} else {
		e.rootCol = e.cols[j.Src(int(p.Root))]
	}
	e.pstats.Patches += int64(nd)
	e.estats.NodesReevaluated += int64(nd)
	e.estats.NodesTotal += int64(len(p.Nodes))
	e.estats.CasesTotal += int64(e.ncases)
}

// RunTape executes the live proposal tape for suite cases [c0, c1)
// without resolving a root sub-column — the fused cost path
// (cost.Kind.OfPlan) reads the root once via ProposalRoot instead of
// reslicing per chunk. Work accounting matches EvalRange exactly (it
// is EvalRange minus the reslice).
func (e *State) RunTape(c0, c1 int) {
	tape := e.tape[:e.nlive]
	for k := range tape {
		t := &tape[k]
		t.kern(t.dst, t.a, t.b, t.imm, c0, c1)
	}
	e.estats.CasesEvaluated += int64(c1 - c0)
}

// ProposalRoot returns the active proposal's full root value column;
// entries for cases [c0, c1) are valid once RunTape(c0, c1) has run.
func (e *State) ProposalRoot() []uint64 { return e.rootCol }

// EvalRange runs the live proposal tape for suite cases [c0, c1) and
// returns the proposal's root values for that range. Consumers pull
// blocks in case order and may stop early; Commit requires every
// block to have been pulled.
func (e *State) EvalRange(c0, c1 int) []uint64 {
	e.RunTape(c0, c1)
	return e.rootCol[c0:c1]
}

// Commit adopts the proposal: deferred entries are materialized (the
// committed matrix must be exact for every node — CaseValues feeds
// the redundancy probes), surviving committed columns are re-homed to
// their post-edit indices, and the recomputed shadow columns are
// swapped in. Header permutation only, no value copies beyond the
// deferred fills.
func (e *State) Commit() {
	j := e.j
	// Deferred entries' operand bindings reference the pre-re-homing
	// column layout, so run them first. The deferred tape is in
	// topological order and unreachable nodes only feed unreachable
	// nodes, so tape order is execution order.
	for k := 0; k < e.ndefer; k++ {
		t := &e.dtape[k]
		t.kern(t.dst, t.a, t.b, t.imm, 0, e.ncases)
	}
	if j.Compacted() {
		// The index map is strictly increasing over surviving nodes
		// (compaction preserves order and only moves nodes down), so
		// ascending swaps re-home every surviving column without
		// clobbering one that is still needed.
		for i := 0; i < len(e.p.Nodes); i++ {
			if s := j.Src(i); s >= 0 && s != i {
				e.cols[i], e.cols[s] = e.cols[s], e.cols[i]
			}
		}
	}
	for mask := e.dirty; mask != 0; {
		i := mathbits.TrailingZeros32(mask)
		mask &^= 1 << uint(i)
		e.cols[i], e.prop[i] = e.prop[i], e.cols[i]
	}
	e.rebuildUsers()
	if j.Compacted() {
		// Committed indices moved wholesale; relower the whole cache.
		// (This must run even with an empty dirty mask — a root-only
		// move followed by GC compacts without dirtying anything.)
		e.rebuildPops()
	} else {
		// Adopt the proposal lowerings for the edited slots. The
		// facts-free patch compile is exactly what Begin produced for
		// them (compileNode with nil facts), so no relowering needed;
		// only the pre-fold argument masks are recomputed from the now
		// committed nodes.
		for mask := e.dirty; mask != 0; {
			i := mathbits.TrailingZeros32(mask)
			bit := uint32(1) << uint(i)
			mask &^= bit
			e.pops[i] = e.ops[i]
			n := &e.p.Nodes[i]
			var pa uint32
			for a := 0; a < n.Op.Arity(); a++ {
				pa |= 1 << uint(n.Args[a])
			}
			e.pargs[i] = pa
			e.popsFused = e.popsFused&^bit | e.opsFused&bit
		}
	}
	e.j = nil
	e.dirty = 0
	e.ndirty = 0
	e.nlive = 0
	e.ndefer = 0
}

// Abort discards the proposal. The committed columns were never
// touched, so after the program edit is rolled back the engine is
// exactly in its pre-proposal state.
func (e *State) Abort() {
	e.j = nil
	e.dirty = 0
	e.ndirty = 0
	e.nlive = 0
	e.ndefer = 0
}
