package plan

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// randInstOp returns a uniformly random instruction opcode.
func randInstOp(rng *rand.Rand) prog.Op {
	return prog.Op(int(prog.OpConst) + 1 + rng.IntN(prog.NumOps-int(prog.OpConst)-1))
}

// randBodyNode returns a random body node for index idx whose
// arguments point at strictly lower indices (index order is a
// topological order by construction). A quarter of the nodes are
// constants, which exercises the compiler's immediate-folding paths.
func randBodyNode(rng *rand.Rand, idx int) prog.Node {
	if rng.IntN(4) == 0 {
		return prog.Node{Op: prog.OpConst, Val: rng.Uint64()}
	}
	nd := prog.Node{Op: randInstOp(rng)}
	nd.Args[0] = int32(rng.IntN(idx))
	nd.Args[1] = int32(rng.IntN(idx))
	return nd
}

// randProgram builds a random acyclic program with the given body
// size, rooted at the last node. Earlier body nodes the root does not
// reach are dead — exactly the shape that exercises the deferral
// path.
func randProgram(rng *rand.Rand, numInputs, body int) *prog.Program {
	p := prog.NewConst(numInputs, rng.Uint64())
	for k := 1; k < body; k++ {
		p.AppendNode(randBodyNode(rng, p.Len()))
	}
	p.SetRoot(int32(p.Len() - 1))
	return p
}

// TestKernelsMatchEvalOp pins every fusion-table kernel — VV, VI, and
// IV variants — to the per-case EvalOp reference for every
// instruction opcode, including split-range fills (chunked execution
// must be seamless) and boundary shift amounts in both column and
// immediate positions.
func TestKernelsMatchEvalOp(t *testing.T) {
	const n = 37
	rng := rand.New(rand.NewPCG(1, 2))
	a := make([]uint64, n)
	b := make([]uint64, n)
	for c := 0; c < n; c++ {
		a[c], b[c] = rng.Uint64(), rng.Uint64()
	}
	boundary := []uint64{0, 1, 31, 32, 63, 64, 65, ^uint64(0),
		uint64(1) << 63, ^uint64(0) - 1, 2}
	// Boundary shift/rotate/divisor amounts at the front of both
	// operand columns.
	copy(a, boundary)
	copy(b, boundary)
	a[0] = uint64(1) << 63 // MinInt64 over a -1 divisor in early cases
	dst := make([]uint64, n)
	run := func(k kernel, av, bv []uint64, imm uint64) {
		for c := range dst {
			dst[c] = 0xdeadbeefdeadbeef // poison
		}
		k(dst, av, bv, imm, 0, 17)
		k(dst, av, bv, imm, 17, n)
	}
	for op := prog.OpConst + 1; op < prog.Op(prog.NumOps); op++ {
		ks := &fusion[op]
		if ks.VV == nil {
			t.Fatalf("%v: no VV kernel", op)
		}
		if op.Arity() == 1 {
			if ks.VI != nil || ks.IV != nil {
				t.Fatalf("%v: unary opcode with immediate kernel variants", op)
			}
			run(ks.VV, a, nil, 0)
			for c := 0; c < n; c++ {
				if want := prog.EvalOp(op, a[c], 0); dst[c] != want {
					t.Fatalf("%v VV case %d: kernel %#x, EvalOp %#x", op, c, dst[c], want)
				}
			}
			continue
		}
		run(ks.VV, a, b, 0)
		for c := 0; c < n; c++ {
			if want := prog.EvalOp(op, a[c], b[c]); dst[c] != want {
				t.Fatalf("%v VV case %d: kernel %#x, EvalOp %#x", op, c, dst[c], want)
			}
		}
		if ks.VI != nil {
			for _, imm := range boundary {
				run(ks.VI, a, nil, imm)
				for c := 0; c < n; c++ {
					if want := prog.EvalOp(op, a[c], imm); dst[c] != want {
						t.Fatalf("%v VI imm=%#x case %d: kernel %#x, EvalOp %#x",
							op, imm, c, dst[c], want)
					}
				}
			}
		}
		if ks.IV != nil {
			for _, imm := range boundary {
				run(ks.IV, nil, b, imm)
				for c := 0; c < n; c++ {
					if want := prog.EvalOp(op, imm, b[c]); dst[c] != want {
						t.Fatalf("%v IV imm=%#x case %d: kernel %#x, EvalOp %#x",
							op, imm, c, dst[c], want)
					}
				}
			}
		}
	}
}

// TestCommutativeTable verifies the operand-swap fusion premise: every
// opcode the compiler serves immediate-left through the VI kernel
// must actually be commutative under EvalOp, and must be binary.
func TestCommutativeTable(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for op := prog.Op(0); op < prog.Op(prog.NumOps); op++ {
		if !commutative[op] {
			continue
		}
		if op.Arity() != 2 {
			t.Fatalf("%v: commutative entry on non-binary opcode", op)
		}
		for trial := 0; trial < 256; trial++ {
			a, b := rng.Uint64(), rng.Uint64()
			if prog.EvalOp(op, a, b) != prog.EvalOp(op, b, a) {
				t.Fatalf("%v: not commutative on %#x, %#x", op, a, b)
			}
		}
	}
}

// constInputSuite builds a suite whose input 1 is the same value on
// every case, so absint's input facts pin it exactly and the full
// compiler folds everything downstream of it.
func constInputSuite(rng *rand.Rand, ncases int, fixed uint64) *testcase.Suite {
	s := &testcase.Suite{NumInputs: 2}
	for c := 0; c < ncases; c++ {
		in := []uint64{rng.Uint64(), fixed}
		s.Cases = append(s.Cases, testcase.Case{Inputs: in, Output: in[0] ^ fixed})
	}
	return s
}

// TestResetMatchesEval checks that a full compile-and-run reproduces,
// column for column, the values the per-case evaluator computes —
// over a suite with one constant input, so the absint folding paths
// (whole-node fills and immediate operands) are actually taken.
func TestResetMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0x5eed))
	suite := constInputSuite(rng, 29, 0x1234)
	e := New(suite)
	var vals, cv [prog.MaxNodes]uint64
	for trial := 0; trial < 100; trial++ {
		p := randProgram(rng, 2, 1+rng.IntN(prog.MaxBody))
		e.Reset(p)
		for c, tc := range suite.Cases {
			root := p.Eval(tc.Inputs, vals[:])
			if e.RootColumn()[c] != root {
				t.Fatalf("trial %d case %d: root column %#x, eval %#x",
					trial, c, e.RootColumn()[c], root)
			}
			e.CaseValues(c, cv[:])
			for i := range p.Nodes {
				if cv[i] != vals[i] {
					t.Fatalf("trial %d node %d case %d: CaseValues %#x, eval %#x",
						trial, i, c, cv[i], vals[i])
				}
			}
		}
	}
	st := e.PlanStats()
	if st.Compiles == 0 || st.FusedNodes == 0 {
		t.Fatalf("folding paths not exercised: %+v", st)
	}
}

// TestRecipeCache checks that Reset with a previously seen shape is
// served from the cache and still yields exact columns, and that a
// hash-colliding-but-different shape never reuses a wrong recipe
// (structural verification on hit).
func TestRecipeCache(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0xcafe))
	suite := constInputSuite(rng, 17, 42)
	e := New(suite)
	progs := make([]*prog.Program, 8)
	for i := range progs {
		progs[i] = randProgram(rng, 2, 1+rng.IntN(prog.MaxBody))
	}
	var vals [prog.MaxNodes]uint64
	base := e.PlanStats()
	for round := 0; round < 3; round++ {
		for _, p := range progs {
			e.Reset(p)
			for c, tc := range suite.Cases {
				if want := p.Eval(tc.Inputs, vals[:]); e.RootColumn()[c] != want {
					t.Fatalf("round %d case %d: root %#x, eval %#x",
						round, c, e.RootColumn()[c], want)
				}
			}
		}
	}
	d := e.PlanStats().Sub(base)
	if d.CacheHits < int64(2*len(progs)) {
		t.Fatalf("cache hits = %d, want >= %d (stats %+v)", d.CacheHits, 2*len(progs), d)
	}
	// A second State on the same suite shares the published recipes.
	e2 := New(suite)
	e2.Reset(progs[0])
	if st := e2.PlanStats(); st.CacheHits != 1 || st.Compiles != 0 {
		t.Fatalf("shared cache not hit from a fresh State: %+v", st)
	}
}

// TestPlanIncrementalRandomEdits is the plan engine's core property
// test, run in lockstep with the interpreted engine: a long random
// walk of journaled in-place edits — opcode and argument rewrites,
// appends, root moves, and compacting GCs — with both engines
// consuming the same journal. Every proposal's EvalRange output is
// checked against the interpreted engine and a from-scratch
// evaluation, and the committed matrices are compared node for node
// after every Commit and every Abort+Rollback.
func TestPlanIncrementalRandomEdits(t *testing.T) {
	const numInputs = 2
	const ncases = 19 // not a multiple of EvalChunk: exercises the tail block
	for seed := uint64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xe17))
		suite := testcase.Generate(func(in []uint64) uint64 { return in[0] ^ in[1] },
			numInputs, ncases, rng)
		p := randProgram(rng, numInputs, 6)
		ref := prog.NewEvalState(suite)
		ref.Reset(p)
		e := New(suite)
		e.Reset(p)
		var j prog.Journal
		got := make([]uint64, ncases)
		want := make([]uint64, ncases)
		var vals, cvPlan, cvRef [prog.MaxNodes]uint64
		for iter := 0; iter < 300; iter++ {
			p.BeginEdit(&j)
			for w, nwrites := 0, 1+rng.IntN(3); w < nwrites; w++ {
				switch k := rng.IntN(3); {
				case k == 0 && p.BodyLen() > 0:
					// Arity-preserving opcode swap, like the real opcode
					// move.
					i := int32(numInputs + rng.IntN(p.BodyLen()))
					if op, ok := prog.FullSet.RandomOpArity(rng, p.Nodes[i].Op.Arity()); ok {
						p.SetOp(i, op)
					}
				case k == 1 && p.BodyLen() > 0:
					i := int32(numInputs + rng.IntN(p.BodyLen()))
					p.SetArg(i, rng.IntN(prog.MaxArity), int32(rng.IntN(int(i))))
				case p.Len() < prog.MaxNodes:
					p.AppendNode(randBodyNode(rng, p.Len()))
				}
			}
			// Occasionally move the root and compact (writes first,
			// collect last — the journaling discipline).
			if rng.IntN(4) == 0 {
				p.SetRoot(int32(rng.IntN(p.Len())))
				p.GC()
			}
			ref.Begin(&j)
			e.Begin(&j)
			for c0 := 0; c0 < ncases; c0 += prog.EvalChunk {
				c1 := c0 + prog.EvalChunk
				if c1 > ncases {
					c1 = ncases
				}
				copy(got[c0:c1], e.EvalRange(c0, c1))
				copy(want[c0:c1], ref.EvalRange(c0, c1))
			}
			q := p.Clone()
			for c, tc := range suite.Cases {
				fresh := q.Eval(tc.Inputs, vals[:])
				if got[c] != fresh || got[c] != want[c] {
					t.Fatalf("seed %d iter %d case %d: plan %#x, engine %#x, fresh %#x",
						seed, iter, c, got[c], want[c], fresh)
				}
			}
			if rng.IntN(2) == 0 {
				ref.Commit()
				e.Commit()
				p.EndEdit()
			} else {
				ref.Abort()
				e.Abort()
				p.Rollback()
			}
			// Both committed matrices must describe the current program
			// exactly, whichever branch was taken.
			for c, tc := range suite.Cases {
				p.Eval(tc.Inputs, vals[:])
				e.CaseValues(c, cvPlan[:])
				ref.CaseValues(c, cvRef[:])
				for i := range p.Nodes {
					if cvPlan[i] != vals[i] || cvPlan[i] != cvRef[i] {
						t.Fatalf("seed %d iter %d node %d case %d: plan %#x, engine %#x, eval %#x",
							seed, iter, i, c, cvPlan[i], cvRef[i], vals[i])
					}
				}
			}
		}
		est, rst := e.Stats(), ref.Stats()
		if est != rst {
			t.Fatalf("seed %d: eval stats diverged: plan %+v, engine %+v", seed, est, rst)
		}
		if pst := e.PlanStats(); pst.Patches == 0 || pst.Patches != est.NodesReevaluated {
			t.Fatalf("seed %d: implausible plan stats %+v (eval %+v)", seed, pst, est)
		}
	}
}
