package plan

import (
	"sync"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// recipe is an unbound, immutable compilation result: the tape in
// topological order plus the lowered instruction per node. Recipes
// depend on the node array, the input arity, and the suite (absint
// folding uses the suite's input facts) — not on the root, which only
// selects which finished column EvalRange returns — so programs
// differing in root alone share one recipe. Once published to the
// cache a recipe is read-only and safe to share across States and
// goroutines.
type recipe struct {
	order []int32
	ops   []compiledOp
	fused int64
}

// cacheKey identifies a program shape. The suite enters by pointer
// identity: input facts are derived from the suite's cases, and a
// search run evaluates against exactly one suite for its lifetime.
type cacheKey struct {
	suite *testcase.Suite
	hash  uint64
}

// cacheEntry pairs the recipe with the exact shape it was compiled
// from, so a hash collision degrades to a recompile instead of a
// wrong tape.
type cacheEntry struct {
	nodes     []prog.Node
	numInputs int
	rec       *recipe
}

// recipeCache amortizes full compiles across restarts and checkpoint
// restores, which re-seed from identical or previously seen programs
// constantly. Restart-tree searches reset thousands of times per
// second, so this is a hot map; the bound keeps a pathological
// never-repeating workload from growing it without limit.
var recipeCache struct {
	mu sync.Mutex
	m  map[cacheKey][]cacheEntry
}

const recipeCacheMax = 4096

// shapeHash is FNV-1a over the node array and input arity.
func shapeHash(p *prog.Program) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	mix(uint64(p.NumInputs))
	for i := range p.Nodes {
		nd := &p.Nodes[i]
		mix(uint64(nd.Op))
		mix(uint64(uint32(nd.Args[0]))<<32 | uint64(uint32(nd.Args[1])))
		mix(nd.Val)
	}
	return h
}

// sameShape reports whether the cached entry was compiled from
// exactly this program shape.
func sameShape(e *cacheEntry, p *prog.Program) bool {
	if e.numInputs != p.NumInputs || len(e.nodes) != len(p.Nodes) {
		return false
	}
	for i := range e.nodes {
		if e.nodes[i] != p.Nodes[i] {
			return false
		}
	}
	return true
}

// lookupRecipe returns the recipe for p's shape, compiling and
// publishing it on a miss. The bool reports a cache hit.
func lookupRecipe(e *State, p *prog.Program) (*recipe, bool) {
	key := cacheKey{suite: e.suite, hash: shapeHash(p)}
	recipeCache.mu.Lock()
	for i := range recipeCache.m[key] {
		ent := &recipeCache.m[key][i]
		if sameShape(ent, p) {
			rec := ent.rec
			recipeCache.mu.Unlock()
			return rec, true
		}
	}
	recipeCache.mu.Unlock()

	// Compile outside the lock: absint analysis and lowering are the
	// expensive part, and concurrent States compiling the same shape
	// just race benignly to publish identical recipes.
	rec := e.compileFull(p)

	recipeCache.mu.Lock()
	if recipeCache.m == nil || len(recipeCache.m) >= recipeCacheMax {
		recipeCache.m = make(map[cacheKey][]cacheEntry)
	}
	recipeCache.m[key] = append(recipeCache.m[key], cacheEntry{
		nodes:     append([]prog.Node(nil), p.Nodes...),
		numInputs: p.NumInputs,
		rec:       rec,
	})
	recipeCache.mu.Unlock()
	return rec, false
}
