package prog

import (
	"math/rand/v2"
	"testing"
)

func TestOpSetArityGroups(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for arity := 1; arity <= 2; arity++ {
		op, ok := FullSet.RandomOpArity(rng, arity)
		if !ok {
			t.Fatalf("FullSet has no arity-%d ops", arity)
		}
		if op.Arity() != arity {
			t.Errorf("RandomOpArity(%d) returned %s with arity %d", arity, op, op.Arity())
		}
	}
	if _, ok := FullSet.RandomOpArity(rng, 0); ok {
		t.Error("FullSet claims to have arity-0 instructions")
	}
}

func TestOpSetContains(t *testing.T) {
	if !FullSet.Contains(OpAdd) {
		t.Error("FullSet missing addq")
	}
	if FullSet.Contains(OpMAnd) {
		t.Error("FullSet contains model op")
	}
	if !ModelSet.Contains(OpMShl) {
		t.Error("ModelSet missing shl")
	}
	if ModelSet.Contains(OpAdd) {
		t.Error("ModelSet contains full-set op")
	}
}

func TestModelSetConstPolicy(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200; i++ {
		c := ModelSet.RandomConst(rng)
		if c != 0 && c != ^uint64(0) {
			t.Fatalf("ModelSet produced constant %#x, want only 0 or ones", c)
		}
	}
}

func TestFullSetConstVariety(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	seen := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		seen[FullSet.RandomConst(rng)] = true
	}
	if len(seen) < 20 {
		t.Errorf("FullSet constants show little variety: %d distinct in 500 draws", len(seen))
	}
}

func TestNewOpSetRejectsPseudoOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewOpSet accepted a pseudo-op")
		}
	}()
	NewOpSet("bad", ConstsInteresting, OpConst)
}

func TestNewOpSetRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewOpSet accepted an empty set")
		}
	}()
	NewOpSet("empty", ConstsInteresting)
}

func TestNewOpSetDedupes(t *testing.T) {
	s := NewOpSet("dup", ConstsInteresting, OpAdd, OpAdd, OpSub)
	if len(s.Ops()) != 2 {
		t.Errorf("duplicate ops not removed: %v", s.Ops())
	}
}

func TestOpByName(t *testing.T) {
	for _, name := range []string{"addq", "orq", "notq", "and", "shl", "sextbq", "addl"} {
		op, ok := OpByName(name)
		if !ok {
			t.Errorf("OpByName(%q) not found", name)
			continue
		}
		if op.String() != name {
			t.Errorf("OpByName(%q).String() = %q", name, op.String())
		}
	}
	if _, ok := OpByName("nope"); ok {
		t.Error("OpByName accepted an unknown name")
	}
}

func TestOpArityConsistency(t *testing.T) {
	// Every instruction opcode must have arity 1 or 2 and a nonempty
	// distinct name.
	names := map[string]Op{}
	for op := Op(1); int(op) < NumOps; op++ {
		name := op.String()
		if name == "" {
			t.Errorf("op %d has empty name", op)
		}
		if prev, dup := names[name]; dup {
			t.Errorf("ops %d and %d share name %q", prev, op, name)
		}
		names[name] = op
		if op.IsInstruction() {
			if a := op.Arity(); a < 1 || a > MaxArity {
				t.Errorf("instruction %s has arity %d", op, a)
			}
		}
	}
}
