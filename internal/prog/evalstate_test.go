package prog

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/testcase"
)

// randInstOp returns a uniformly random instruction opcode.
func randInstOp(rng *rand.Rand) Op {
	return Op(int(OpConst) + 1 + rng.IntN(NumOps-int(OpConst)-1))
}

// randBodyNode returns a random body node for index idx whose
// arguments point at strictly lower indices, so index order is a
// topological order by construction and every random edit below keeps
// the graph acyclic.
func randBodyNode(rng *rand.Rand, idx int) Node {
	if rng.IntN(4) == 0 {
		return Node{Op: OpConst, Val: rng.Uint64()}
	}
	nd := Node{Op: randInstOp(rng)}
	nd.Args[0] = int32(rng.IntN(idx))
	nd.Args[1] = int32(rng.IntN(idx))
	return nd
}

// randProgram builds a random acyclic program with the given body
// size, rooted at the last node.
func randProgram(rng *rand.Rand, numInputs, body int) *Program {
	p := newBase(numInputs)
	for k := 0; k < body; k++ {
		p.Nodes = append(p.Nodes, randBodyNode(rng, len(p.Nodes)))
	}
	p.Root = int32(len(p.Nodes) - 1)
	return p
}

// checkTopoOrder asserts that the program's (possibly cached)
// topological order covers every node and places arguments before
// their users. After Rollback this validates the journal's restored
// order cache against the restored program.
func checkTopoOrder(t *testing.T, p *Program) {
	t.Helper()
	order := p.TopoOrder()
	if len(order) != len(p.Nodes) {
		t.Fatalf("topo order covers %d of %d nodes", len(order), len(p.Nodes))
	}
	var pos [MaxNodes]int
	for k, i := range order {
		pos[i] = k
	}
	for _, i := range order {
		nd := &p.Nodes[i]
		for a := 0; a < nd.Op.Arity(); a++ {
			if pos[nd.Args[a]] >= pos[i] {
				t.Fatalf("node %d ordered before its argument %d", i, nd.Args[a])
			}
		}
	}
}

// TestFillColumnMatchesEvalOp pins the engine's op-specialized column
// loops to the per-case evalOp reference for every instruction opcode,
// including a split-range fill (the chunked path must be seamless) and
// boundary shift amounts.
func TestFillColumnMatchesEvalOp(t *testing.T) {
	const n = 37
	rng := rand.New(rand.NewPCG(1, 2))
	a := make([]uint64, n)
	b := make([]uint64, n)
	for c := 0; c < n; c++ {
		a[c], b[c] = rng.Uint64(), rng.Uint64()
	}
	// Boundary shift/rotate amounts at the front of the b column.
	copy(b, []uint64{0, 1, 31, 32, 63, 64, 65, ^uint64(0)})
	e := &EvalState{}
	dst := make([]uint64, n)
	ab := [2][]uint64{a, b}
	for op := OpConst + 1; op < numOps; op++ {
		nd := &Node{Op: op}
		for c := range dst {
			dst[c] = 0xdeadbeefdeadbeef // poison
		}
		// Two ranges: chunked fills must compose to the full column.
		e.fillColumn(nd, dst, ab, 0, 17)
		e.fillColumn(nd, dst, ab, 17, n)
		for c := 0; c < n; c++ {
			bv := uint64(0)
			if op.Arity() == 2 {
				bv = b[c]
			}
			if want := evalOp(op, a[c], bv); dst[c] != want {
				t.Fatalf("%v case %d: fillColumn %#x, evalOp %#x", op, c, dst[c], want)
			}
		}
	}
	// OpConst broadcasts the node's literal.
	nd := &Node{Op: OpConst, Val: 0x123456789abcdef}
	e.fillColumn(nd, dst, ab, 0, n)
	for c := 0; c < n; c++ {
		if dst[c] != nd.Val {
			t.Fatalf("const case %d: %#x", c, dst[c])
		}
	}
}

// TestEvalStateResetMatchesEval checks that a full Reset reproduces,
// column for column, the values the per-case evaluator computes.
func TestEvalStateResetMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0x5eed))
	suite := testcase.Generate(func(in []uint64) uint64 { return in[0] + in[2] }, 3, 29, rng)
	e := NewEvalState(suite)
	var vals, cv [MaxNodes]uint64
	for trial := 0; trial < 50; trial++ {
		p := randProgram(rng, 3, 1+rng.IntN(MaxBody))
		e.Reset(p)
		for c, tc := range suite.Cases {
			root := p.Eval(tc.Inputs, vals[:])
			if e.RootColumn()[c] != root {
				t.Fatalf("trial %d case %d: root column %#x, eval %#x",
					trial, c, e.RootColumn()[c], root)
			}
			e.CaseValues(c, cv[:])
			for i := range p.Nodes {
				if e.cols[i][c] != vals[i] || cv[i] != vals[i] {
					t.Fatalf("trial %d node %d case %d: col %#x, CaseValues %#x, eval %#x",
						trial, i, c, e.cols[i][c], cv[i], vals[i])
				}
			}
		}
	}
}

// TestEvalStateIncrementalRandomEdits is the engine's core property
// test: a long random walk of journaled in-place edits — opcode and
// argument rewrites, appends, root moves, and compacting GCs — with
// every proposal's EvalRange output checked against a from-scratch
// evaluation of the edited program, and the committed matrix checked
// against the current program after every Commit and every
// Abort+Rollback.
func TestEvalStateIncrementalRandomEdits(t *testing.T) {
	const numInputs = 2
	const ncases = 19 // not a multiple of EvalChunk: exercises the tail block
	for seed := uint64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xe17))
		suite := testcase.Generate(func(in []uint64) uint64 { return in[0] ^ in[1] },
			numInputs, ncases, rng)
		p := randProgram(rng, numInputs, 6)
		e := NewEvalState(suite)
		e.Reset(p)
		var j Journal
		got := make([]uint64, ncases)
		var vals [MaxNodes]uint64
		for iter := 0; iter < 300; iter++ {
			snap := p.Clone()
			p.BeginEdit(&j)
			for w, nwrites := 0, 1+rng.IntN(3); w < nwrites; w++ {
				switch k := rng.IntN(3); {
				case k == 0 && p.BodyLen() > 0:
					// Arity-preserving opcode swap, like the real opcode
					// move: a grown arity would expose a stale Args slot
					// that GC never remapped.
					i := int32(numInputs + rng.IntN(p.BodyLen()))
					if op, ok := FullSet.RandomOpArity(rng, p.Nodes[i].Op.Arity()); ok {
						p.SetOp(i, op)
					}
				case k == 1 && p.BodyLen() > 0:
					i := int32(numInputs + rng.IntN(p.BodyLen()))
					p.SetArg(i, rng.IntN(MaxArity), int32(rng.IntN(int(i))))
				case len(p.Nodes) < MaxNodes:
					p.AppendNode(randBodyNode(rng, len(p.Nodes)))
				}
			}
			// Occasionally move the root and compact (writes first,
			// collect last — the journaling discipline).
			if rng.IntN(4) == 0 {
				p.SetRoot(int32(rng.IntN(len(p.Nodes))))
				p.GC()
			}
			e.Begin(&j)
			for c0 := 0; c0 < ncases; c0 += EvalChunk {
				c1 := c0 + EvalChunk
				if c1 > ncases {
					c1 = ncases
				}
				copy(got[c0:c1], e.EvalRange(c0, c1))
			}
			// Proposal root values vs from-scratch evaluation of the
			// edited program (cloned: clones never inherit the edit).
			q := p.Clone()
			for c, tc := range suite.Cases {
				if want := q.Eval(tc.Inputs, vals[:]); got[c] != want {
					t.Fatalf("seed %d iter %d case %d: EvalRange %#x, fresh eval %#x",
						seed, iter, c, got[c], want)
				}
			}
			if rng.IntN(2) == 0 {
				e.Commit()
				p.EndEdit()
			} else {
				e.Abort()
				p.Rollback()
				if !p.Equal(snap) {
					t.Fatalf("seed %d iter %d: rollback diverged", seed, iter)
				}
			}
			// The committed matrix must describe the current program
			// exactly, whichever branch was taken.
			for c, tc := range suite.Cases {
				p.Eval(tc.Inputs, vals[:])
				for i := range p.Nodes {
					if e.cols[i][c] != vals[i] {
						t.Fatalf("seed %d iter %d node %d case %d: col %#x, eval %#x",
							seed, iter, i, c, e.cols[i][c], vals[i])
					}
				}
			}
			checkTopoOrder(t, p)
		}
		if st := e.Stats(); st.NodesReevaluated > st.NodesTotal ||
			st.CasesEvaluated > st.CasesTotal || st.NodesTotal == 0 {
			t.Fatalf("seed %d: implausible stats: %+v", seed, st)
		}
	}
}
