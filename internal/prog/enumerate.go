package prog

// Enumeration of small programs. Section 4 of the paper chooses the
// reduced model dialect specifically because it is "simple enough to
// analyze fully"; this file provides that full analysis: an exhaustive
// generator of all programs up to a body-size bound, deduplicated by
// canonical form, which the tests and the Markov experiments use to
// ground-truth the search space (e.g. that a minimal solution of
// or(shl(x), x) needs exactly two instructions).

// Enumerate yields every structurally distinct program over the
// dialect with at most maxBody body nodes (instructions plus
// constants), deduplicated by canonical form, in approximately
// nondecreasing body size (programs whose subterm sharing makes them
// smaller than their construction level are yielded at that level).
// Constants are drawn from consts (e.g. 0 and ^0 for the model
// dialect). Enumeration stops early when yield returns false.
//
// The generator works bottom-up: level 0 holds the inputs and the
// constant pool; each subsequent candidate applies an opcode to
// previously produced programs, merging their node sets with
// structural deduplication. Exponential in maxBody — intended for
// maxBody <= 4 on small dialects.
func Enumerate(set *OpSet, numInputs int, maxBody int, consts []uint64, yield func(*Program) bool) {
	if maxBody < 0 {
		return
	}
	seen := map[string]bool{}
	stop := false
	// emit yields fresh programs; it returns whether p was new.
	emit := func(p *Program) bool {
		key := p.Canon()
		if seen[key] {
			return false
		}
		seen[key] = true
		if !yield(p) {
			stop = true
		}
		return true
	}

	// pool holds all distinct programs found so far, grouped by actual
	// body size; programs are combined across groups to build larger
	// ones.
	pool := make([][]*Program, maxBody+1)

	// Size-0 programs: the bare inputs.
	for i := 0; i < numInputs; i++ {
		p := NewInput(numInputs, i)
		if emit(p) {
			pool[0] = append(pool[0], p)
		}
		if stop {
			return
		}
	}
	// Size-1 constants.
	if maxBody >= 1 {
		for _, v := range consts {
			p := NewConst(numInputs, v)
			if emit(p) {
				pool[1] = append(pool[1], p)
			}
			if stop {
				return
			}
		}
	}

	// Construction levels run past maxBody because subterm sharing can
	// make a program's body smaller than the sum of its children's
	// (worst case: both children are the same size-(m-1) term, so a
	// body-m program may need level 2m-1).
	maxLevel := 2*maxBody - 1
	for level := 1; level <= maxLevel; level++ {
		for _, op := range set.Ops() {
			switch op.Arity() {
			case 1:
				if level-1 > maxBody {
					continue
				}
				for _, child := range pool[level-1] {
					p := applyUnary(op, child)
					if p == nil || p.BodyLen() > maxBody {
						continue
					}
					if emit(p) {
						pool[p.BodyLen()] = append(pool[p.BodyLen()], p)
					}
					if stop {
						return
					}
				}
			case 2:
				for aSize := 0; aSize <= level-1 && aSize <= maxBody; aSize++ {
					bSize := level - 1 - aSize
					if bSize < 0 || bSize > maxBody {
						continue
					}
					for _, a := range pool[aSize] {
						for _, b := range pool[bSize] {
							p := applyBinary(op, a, b)
							if p == nil || p.BodyLen() > maxBody {
								continue
							}
							if emit(p) {
								pool[p.BodyLen()] = append(pool[p.BodyLen()], p)
							}
							if stop {
								return
							}
						}
					}
				}
			}
		}
	}
}

// applyUnary builds op(child) as a fresh program.
func applyUnary(op Op, child *Program) *Program {
	p := child.Clone()
	p.Nodes = append(p.Nodes, Node{Op: op, Args: [MaxArity]int32{p.Root}})
	p.Root = int32(len(p.Nodes) - 1)
	p.Invalidate()
	if p.BodyLen() > MaxBody {
		return nil
	}
	return p
}

// applyBinary builds op(a, b), merging b's node graph into a's with
// structural deduplication so common subterms are shared.
func applyBinary(op Op, a, b *Program) *Program {
	if a.NumInputs != b.NumInputs {
		return nil
	}
	p := a.Clone()
	bRoot := mergeInto(p, b, b.Root, map[int32]int32{})
	p.Nodes = append(p.Nodes, Node{Op: op, Args: [MaxArity]int32{p.Root, bRoot}})
	p.Root = int32(len(p.Nodes) - 1)
	p.Invalidate()
	p.GC()
	if p.BodyLen() > MaxBody {
		return nil
	}
	return p
}

// mergeInto copies node idx of src (and its reachable arguments) into
// dst, reusing structurally identical nodes already present, and
// returns the corresponding index in dst.
func mergeInto(dst, src *Program, idx int32, memo map[int32]int32) int32 {
	if mapped, ok := memo[idx]; ok {
		return mapped
	}
	nd := src.Nodes[idx]
	if nd.Op == OpInput {
		memo[idx] = int32(nd.Val)
		return int32(nd.Val)
	}
	var args [MaxArity]int32
	for a := 0; a < nd.Op.Arity(); a++ {
		args[a] = mergeInto(dst, src, nd.Args[a], memo)
	}
	// Structural dedup: reuse an identical node if present.
	for i := dst.NumInputs; i < len(dst.Nodes); i++ {
		cand := dst.Nodes[i]
		if cand.Op != nd.Op || cand.Val != nd.Val {
			continue
		}
		match := true
		for a := 0; a < nd.Op.Arity(); a++ {
			if cand.Args[a] != args[a] {
				match = false
				break
			}
		}
		if match {
			memo[idx] = int32(i)
			return int32(i)
		}
	}
	dst.Nodes = append(dst.Nodes, Node{Op: nd.Op, Args: args, Val: nd.Val})
	out := int32(len(dst.Nodes) - 1)
	memo[idx] = out
	return out
}

// CountPrograms returns the number of canonical programs up to
// maxBody, a convenience over Enumerate for analyses and tests.
func CountPrograms(set *OpSet, numInputs, maxBody int, consts []uint64) int {
	n := 0
	Enumerate(set, numInputs, maxBody, consts, func(*Program) bool {
		n++
		return true
	})
	return n
}
