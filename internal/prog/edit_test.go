package prog_test

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/mutate"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// checkOrder asserts that the program's (possibly cached) topological
// order covers every node and places arguments before their users.
// After a Rollback this validates the journal's restored order cache.
func checkOrder(t *testing.T, p *prog.Program) {
	t.Helper()
	order := p.TopoOrder()
	if len(order) != p.Len() {
		t.Fatalf("topo order covers %d of %d nodes", len(order), p.Len())
	}
	var pos [prog.MaxNodes]int
	for k, i := range order {
		pos[i] = k
	}
	for _, i := range order {
		nd := &p.Nodes[i]
		for a := 0; a < nd.Op.Arity(); a++ {
			if pos[nd.Args[a]] >= pos[i] {
				t.Fatalf("node %d ordered before its argument %d", i, nd.Args[a])
			}
		}
	}
}

// TestJournalRollbackUnderMoves drives the real mutation moves through
// journaled in-place edits, accepting a third of the valid proposals
// (so the walk explores program space) and rejecting the rest: after
// every Rollback the program must be bit-identical to its pre-edit
// snapshot and its restored topological-order cache must still be a
// valid order; after every accept the program must still Validate.
func TestJournalRollbackUnderMoves(t *testing.T) {
	dialects := []struct {
		name       string
		set        *prog.OpSet
		redundancy bool
	}{
		{"full", prog.FullSet, false},
		{"model", prog.ModelSet, true},
	}
	for _, d := range dialects {
		t.Run(d.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(42, 0xed17))
			suite := testcase.Generate(func(in []uint64) uint64 { return in[0] &^ in[1] }, 2, 33, rng)
			mut := mutate.New(d.set, suite, d.redundancy)
			p := prog.NewZero(2)
			var j prog.Journal
			accepted := 0
			for iter := 0; iter < 2000; iter++ {
				snap := p.Clone()
				p.BeginEdit(&j)
				_, ok := mut.Apply(p, rng)
				if ok && rng.IntN(3) == 0 {
					p.EndEdit()
					accepted++
					if err := p.Validate(); err != nil {
						t.Fatalf("iter %d: accepted program invalid: %v\n%s", iter, err, p)
					}
					continue
				}
				p.Rollback()
				if !p.Equal(snap) {
					t.Fatalf("iter %d: rollback diverged:\n got %s\nwant %s", iter, p, snap)
				}
				checkOrder(t, p)
			}
			if accepted == 0 {
				t.Fatal("no proposal was ever accepted; the walk never moved")
			}
		})
	}
}

// TestJournalDirtyMaskSoundness pins the contract the evaluation
// engine builds on: the journal's dirty mask names every node whose
// own content an accepted move changed, so after closing the mask over
// transitive users (exactly what prog.EvalState.Begin does), every
// node outside the closure maps to a pre-edit source node (journal
// Src) and computes exactly the value that source computed, on every
// suite input.
func TestJournalDirtyMaskSoundness(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0xd127))
	suite := testcase.Generate(func(in []uint64) uint64 { return in[0] * in[1] }, 2, 9, rng)
	mut := mutate.New(prog.FullSet, suite, false)
	p := prog.NewZero(2)
	var j prog.Journal
	var valsNew, valsOld [prog.MaxNodes]uint64
	for iter := 0; iter < 2000; iter++ {
		snap := p.Clone()
		p.BeginEdit(&j)
		if _, ok := mut.Apply(p, rng); !ok {
			p.Rollback()
			continue
		}
		p.EndEdit()
		// Close the dirty mask over users, in topological order.
		dirty := j.Dirty()
		for _, i := range p.TopoOrder() {
			nd := &p.Nodes[i]
			for a := 0; a < nd.Op.Arity(); a++ {
				if dirty&(1<<uint(nd.Args[a])) != 0 {
					dirty |= 1 << uint(i)
					break
				}
			}
		}
		for _, tc := range suite.Cases {
			p.Eval(tc.Inputs, valsNew[:])
			snap.Eval(tc.Inputs, valsOld[:])
			for i := 0; i < p.Len(); i++ {
				if dirty&(1<<uint(i)) != 0 {
					continue
				}
				s := j.Src(i)
				if s < 0 {
					t.Fatalf("iter %d: clean node %d has no pre-edit source", iter, i)
				}
				if valsNew[i] != valsOld[s] {
					t.Fatalf("iter %d inputs %v: clean node %d (pre-edit %d) changed value: %#x -> %#x",
						iter, tc.Inputs, i, s, valsOld[s], valsNew[i])
				}
			}
		}
	}
}

// TestJournalNoopEdit checks the cheap-detach path: an edit that never
// writes (an invalid proposal) rolls back for free, leaving both the
// program and its cached order untouched.
func TestJournalNoopEdit(t *testing.T) {
	p := prog.MustParse("andq(x, subq(x, 1))", 1)
	snap := p.Clone()
	p.TopoOrder() // warm the cache
	var j prog.Journal
	p.BeginEdit(&j)
	if j.Mutated(p) {
		t.Fatal("fresh journal reports a mutation")
	}
	p.Rollback()
	if !p.Equal(snap) {
		t.Fatalf("no-op rollback changed the program: %s", p)
	}
	checkOrder(t, p)
}
