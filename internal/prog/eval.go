package prog

import mathbits "math/bits"

// evalOp applies an instruction opcode to its (up to two) argument
// values. Unary operations ignore b. Per the paper, operations that
// would trap at runtime (division or modulus with undefined results)
// produce zero instead.
func evalOp(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDivU:
		if b == 0 {
			return 0
		}
		return a / b
	case OpRemU:
		if b == 0 {
			return 0
		}
		return a % b
	case OpDivS:
		sb := int64(b)
		sa := int64(a)
		if sb == 0 || (sa == -1<<63 && sb == -1) {
			return 0
		}
		return uint64(sa / sb)
	case OpRemS:
		sb := int64(b)
		sa := int64(a)
		if sb == 0 || (sa == -1<<63 && sb == -1) {
			return 0
		}
		return uint64(sa % sb)
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpSar:
		return uint64(int64(a) >> (b & 63))
	case OpRol:
		return mathbits.RotateLeft64(a, int(b&63))
	case OpRor:
		return mathbits.RotateLeft64(a, -int(b&63))
	case OpEq:
		if a == b {
			return 1
		}
		return 0
	case OpUlt:
		if a < b {
			return 1
		}
		return 0
	case OpSlt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0

	case OpNot:
		return ^a
	case OpNeg:
		return -a
	case OpBswap:
		return mathbits.ReverseBytes64(a)
	case OpPopcnt:
		return uint64(mathbits.OnesCount64(a))
	case OpClz:
		return uint64(mathbits.LeadingZeros64(a))
	case OpCtz:
		return uint64(mathbits.TrailingZeros64(a))
	case OpSext8:
		return uint64(int64(int8(a)))
	case OpSext16:
		return uint64(int64(int16(a)))
	case OpSext32:
		return uint64(int64(int32(a)))
	case OpZext8:
		return uint64(uint8(a))
	case OpZext16:
		return uint64(uint16(a))
	case OpZext32:
		return uint64(uint32(a))

	case OpAdd32:
		return uint64(uint32(a) + uint32(b))
	case OpSub32:
		return uint64(uint32(a) - uint32(b))
	case OpMul32:
		return uint64(uint32(a) * uint32(b))
	case OpAnd32:
		return uint64(uint32(a) & uint32(b))
	case OpOr32:
		return uint64(uint32(a) | uint32(b))
	case OpXor32:
		return uint64(uint32(a) ^ uint32(b))
	case OpShl32:
		return uint64(uint32(a) << (b & 31))
	case OpShr32:
		return uint64(uint32(a) >> (b & 31))
	case OpSar32:
		return uint64(uint32(int32(a) >> (b & 31)))

	case OpNot32:
		return uint64(^uint32(a))
	case OpNeg32:
		return uint64(-uint32(a))

	case OpMAnd:
		return a & b
	case OpMOr:
		return a | b
	case OpMXor:
		return a ^ b
	case OpMNot:
		return ^a
	case OpMShl:
		return a << 1
	case OpMShr:
		return a >> 1
	}
	return 0
}

// EvalOp exposes single-operation evaluation, primarily for tests and
// for the assembly-to-dataflow translator.
func EvalOp(op Op, a, b uint64) uint64 { return evalOp(op, a, b) }

// EvalInto is the sanctioned non-engine evaluation door for the
// legacy (copy-based) reference path: it evaluates p on one input
// vector, filling every node's value into vals, exactly like
// Program.Eval — both routes share the bounds-checked evalChecked
// body, so the fallback seam validates its buffers the same way the
// primary path does. Direct Program.Eval calls are confined to
// internal/prog, internal/cost, and internal/prog/analysis by
// cmd/repolint so that hot paths flow through the evaluation engine
// or the cost layer; EvalInto exists for internal/mutate's
// differential-testing fallback and is likewise linted against use
// anywhere else.
func EvalInto(p *Program, inputs, vals []uint64) uint64 { return p.evalChecked(inputs, vals) }
