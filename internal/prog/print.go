package prog

import (
	"fmt"
	"sort"
	"strings"
)

// InputName returns the conventional name for input i: x, y, z, w for
// the first four, then in4, in5, and so on. The parser accepts these
// names and the printer emits them.
func InputName(i int) string {
	switch i {
	case 0:
		return "x"
	case 1:
		return "y"
	case 2:
		return "z"
	case 3:
		return "w"
	}
	return fmt.Sprintf("in%d", i)
}

// inputIndex is the inverse of InputName; it returns -1 for names that
// are not input names.
func inputIndex(name string) int {
	switch name {
	case "x":
		return 0
	case "y":
		return 1
	case "z":
		return 2
	case "w":
		return 3
	}
	var i int
	if n, err := fmt.Sscanf(name, "in%d", &i); err == nil && n == 1 && i >= 4 {
		return i
	}
	return -1
}

// String renders the program in the paper's textual notation. Nodes
// used more than once are bound to letters via the sharing form, e.g.
// "a = notq(x); addq(a, a)"; otherwise a plain nested expression is
// produced, e.g. "orq(andq(x, y), andq(notq(x), z))".
func (p *Program) String() string {
	n := len(p.Nodes)
	// Count uses of each node among reachable nodes.
	var uses [MaxNodes]int
	mask := p.Reachable()
	for i := 0; i < n; i++ {
		if mask&(uint64(1)<<uint(i)) == 0 {
			continue
		}
		nd := &p.Nodes[i]
		for a := 0; a < nd.Op.Arity(); a++ {
			uses[nd.Args[a]]++
		}
	}
	// Assign letters to shared instruction nodes in topological order
	// so bindings appear before their uses.
	var name [MaxNodes]string
	var bindings []string
	next := 0
	for _, i := range p.TopoOrder() {
		if mask&(uint64(1)<<uint(i)) == 0 {
			continue
		}
		nd := &p.Nodes[i]
		if uses[i] > 1 && nd.Op.IsInstruction() {
			nm := bindingName(next)
			next++
			bindings = append(bindings, fmt.Sprintf("%s = %s", nm, p.render(i, &name)))
			name[i] = nm
		}
	}
	root := p.render(p.Root, &name)
	if len(bindings) == 0 {
		return root
	}
	return strings.Join(bindings, "; ") + "; " + root
}

// bindingName yields a, b, ..., z, t26, t27, ... skipping the input
// names x, y, z, w would collide with: it uses a..v then tN.
func bindingName(i int) string {
	if i < 22 { // 'a'..'v': stops before 'w' to avoid input names
		return string(rune('a' + i))
	}
	return fmt.Sprintf("t%d", i)
}

// render produces the expression for node i, consulting name for
// already-bound shared nodes.
func (p *Program) render(i int32, name *[MaxNodes]string) string {
	if nm := name[i]; nm != "" {
		return nm
	}
	nd := &p.Nodes[i]
	switch nd.Op {
	case OpInput:
		return InputName(int(nd.Val))
	case OpConst:
		return FormatConst(nd.Val)
	}
	var sb strings.Builder
	sb.WriteString(nd.Op.String())
	sb.WriteByte('(')
	for a := 0; a < nd.Op.Arity(); a++ {
		if a > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.render(nd.Args[a], name))
	}
	sb.WriteByte(')')
	return sb.String()
}

// FormatConst renders a constant the way the printer and parser agree
// on: small magnitudes in signed decimal, everything else in hex.
func FormatConst(v uint64) string {
	if s := int64(v); s >= -1024 && s <= 1024 {
		return fmt.Sprintf("%d", s)
	}
	return fmt.Sprintf("%#x", v)
}

// Commutative reports whether the opcode's arguments may be reordered
// without changing its value; Canon (and the analysis canonicalizer)
// sort the arguments of such operations.
func Commutative(op Op) bool { return commutative(op) }

// commutative reports whether the opcode's arguments may be reordered
// without changing its value; Canon sorts such arguments.
func commutative(op Op) bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq,
		OpAdd32, OpMul32, OpAnd32, OpOr32, OpXor32,
		OpMAnd, OpMOr, OpMXor:
		return true
	}
	return false
}

// Canon returns a canonical key for the program: the fully expanded
// expression for the root with the arguments of commutative operations
// sorted. Programs that differ only in node ordering, argument order
// of commutative operations, or duplicated-but-identical subterms map
// to the same key. The expansion is memoized per node; with the
// 16-node limit the key stays small in practice. Canon is intended for
// state bookkeeping in the Markov analysis, not for the hot loop.
func (p *Program) Canon() string {
	var memo [MaxNodes]string
	var expand func(int32) string
	expand = func(i int32) string {
		if memo[i] != "" {
			return memo[i]
		}
		nd := &p.Nodes[i]
		var s string
		switch nd.Op {
		case OpInput:
			s = InputName(int(nd.Val))
		case OpConst:
			s = FormatConst(nd.Val)
		default:
			args := make([]string, nd.Op.Arity())
			for a := range args {
				args[a] = expand(nd.Args[a])
			}
			if commutative(nd.Op) {
				sort.Strings(args)
			}
			s = nd.Op.String() + "(" + strings.Join(args, ", ") + ")"
		}
		memo[i] = s
		return s
	}
	return expand(p.Root)
}
