package prog

import mathbits "math/bits"

// This file implements in-place program editing with undo: the core of
// the incremental evaluation engine. A Journal attached to a Program
// (BeginEdit) records, for every node the edit overwrites, the node's
// original contents the first time it is touched (copy-on-write), plus
// the original root and length. Rollback restores the pre-edit program
// exactly; Commit-side consumers (prog.EvalState) additionally use the
// journal's dirty mask and index mapping to know which value columns
// survived the edit unchanged.
//
// The journal replaces the search loop's previous double-buffered
// proposal scheme (scratch.CopyFrom(cur) + mutate + swap): a move now
// edits the current program directly and is reverted on rejection.
// Because the journal only observes writes — it never reorders them,
// and reverting reproduces the exact pre-edit node array — a
// journaled apply/rollback sequence is bit-identical to the old
// copy-and-discard sequence, which the oracle tables pin.
//
// Discipline (asserted in debug builds, documented here for editors):
//
//   - All writes during an edit must go through the journaling
//     mutators (SetOp, SetArg, SetRoot, AppendNode) or through GC.
//   - At most one compacting GC per edit, and no content writes after
//     it. Every mutate move satisfies this: moves write first and
//     garbage-collect last. (Non-compacting GC calls — the common
//     case — are unrestricted.)

// Journal records the undo and dirtiness information of one in-place
// edit. The zero value is ready for use; a single Journal is reused
// across iterations by the search loop (BeginEdit resets it in O(1)).
type Journal struct {
	saved    [MaxNodes]Node
	savedSet uint32 // bitmask over pre-edit indices with an entry in saved
	oldLen   int
	oldRoot  int32

	// dirty is the bitmask, over the program's *current* node indices,
	// of nodes whose own content the edit changed: content-written
	// nodes and appended nodes. GC compaction remaps it. Nodes outside
	// the mask are guaranteed to hold the same op, val, and (up to
	// renumbering) argument indices as before the edit — but their
	// *values* may still change when a transitive argument is dirty,
	// so value consumers must close the mask over users
	// (prog.EvalState.Begin does exactly that).
	dirty uint32

	// compacted records whether a GC compaction ran during the edit;
	// srcIdx is then the current→pre-edit index map (-1 for nodes
	// appended during the edit). When compacted is false the map is
	// the identity on pre-edit indices.
	compacted bool
	srcIdx    [MaxNodes]int8

	// savedOrder snapshots the program's topological-order cache at
	// BeginEdit. Rollback restores the exact pre-edit program, for
	// which the pre-edit order is again valid, so restoring the cache
	// saves a rebuild on every rejected proposal.
	savedOrder    [MaxNodes]int32
	savedOrderLen int
	savedOrderOK  bool

	// savedAritySum snapshots the arity-sum cache at BeginEdit;
	// Rollback restores it (the restored program is exactly the
	// pre-edit one, for which the snapshot is exact).
	savedAritySum   int
	savedAritySumOK bool
}

// BeginEdit attaches j to p and resets it. Subsequent journaling
// mutator calls and GC record into j until EndEdit or Rollback.
// Nested edits are not supported.
func (p *Program) BeginEdit(j *Journal) {
	if p.jr != nil {
		panic("prog: BeginEdit with an edit already active")
	}
	j.savedSet = 0
	j.dirty = 0
	j.compacted = false
	j.oldLen = len(p.Nodes)
	j.oldRoot = p.Root
	j.savedOrderOK = p.orderOK
	if p.orderOK {
		j.savedOrderLen = copy(j.savedOrder[:], p.order)
	}
	j.savedAritySum = p.aritySum
	j.savedAritySumOK = p.aritySumOK
	p.jr = j
}

// EndEdit detaches the journal, keeping the edit's effects. The
// journal's dirty mask and index map remain readable until the next
// BeginEdit.
func (p *Program) EndEdit() { p.jr = nil }

// Journal returns the active edit journal, or nil outside an edit.
func (p *Program) Journal() *Journal { return p.jr }

// Mutated reports whether the edit changed anything: any node written
// or appended, the root moved, or nodes removed. A move that returned
// invalid leaves the program untouched and Mutated false.
func (j *Journal) Mutated(p *Program) bool {
	return j.savedSet != 0 || j.dirty != 0 || j.compacted ||
		len(p.Nodes) != j.oldLen || p.Root != j.oldRoot
}

// Dirty returns the bitmask, over current node indices, of nodes whose
// values may differ from the pre-edit program.
func (j *Journal) Dirty() uint32 { return j.dirty }

// Compacted reports whether a GC compaction ran during the edit, i.e.
// whether Src is a non-identity renumbering that commit-side column
// consumers must re-home through.
func (j *Journal) Compacted() bool { return j.compacted }

// Src maps a current node index to its pre-edit index, or -1 for a
// node appended during the edit.
func (j *Journal) Src(i int) int {
	if !j.compacted {
		if i < j.oldLen {
			return i
		}
		return -1
	}
	return int(j.srcIdx[i])
}

// Rollback restores the exact pre-edit program and detaches the
// journal. The cached topological order is dropped only when the edit
// actually changed something, so rejected invalid proposals keep the
// order cache warm.
func (p *Program) Rollback() {
	j := p.jr
	if j == nil {
		panic("prog: Rollback without an active edit")
	}
	p.jr = nil
	if !j.Mutated(p) {
		return
	}
	if j.compacted {
		// The masks (if any) describe the compacted numbering, which
		// the restore is about to undo; there is no cheap inverse.
		p.usersOK = false
	}
	if p.usersOK {
		// The masks describe the current (end-of-edit) program — the
		// journaling mutators maintain them through every write — so
		// they can be repaired instead of rebuilt: remove every edge the
		// edit's surviving nodes own (appended nodes and overwritten
		// nodes), restore the nodes, then re-add the restored edges.
		// Untouched nodes' edges were never disturbed.
		for i := j.oldLen; i < len(p.Nodes); i++ {
			nd := &p.Nodes[i]
			bit := uint32(1) << uint(i)
			for a := 0; a < nd.Op.Arity(); a++ {
				p.users[nd.Args[a]] &^= bit
			}
		}
		for mask := j.savedSet; mask != 0; {
			i := mathbits.TrailingZeros32(mask)
			mask &^= 1 << uint(i)
			nd := &p.Nodes[i]
			bit := uint32(1) << uint(i)
			for a := 0; a < nd.Op.Arity(); a++ {
				p.users[nd.Args[a]] &^= bit
			}
		}
		// Keep the invariant that mask slots at or past the node count
		// are zero (AppendNode relies on it).
		for i := j.oldLen; i < len(p.Nodes); i++ {
			p.users[i] = 0
		}
	}
	p.Nodes = p.Nodes[:j.oldLen]
	for mask := j.savedSet; mask != 0; {
		i := mathbits.TrailingZeros32(mask)
		mask &^= 1 << uint(i)
		p.Nodes[i] = j.saved[i]
	}
	p.Root = j.oldRoot
	if p.usersOK {
		for mask := j.savedSet; mask != 0; {
			i := mathbits.TrailingZeros32(mask)
			mask &^= 1 << uint(i)
			nd := &p.Nodes[i]
			bit := uint32(1) << uint(i)
			for a := 0; a < nd.Op.Arity(); a++ {
				p.users[nd.Args[a]] |= bit
			}
		}
	}
	if j.savedOrderOK {
		// The restored program is bit-identical to the pre-edit one, so
		// its cached topological order is valid again.
		p.order = append(p.order[:0], j.savedOrder[:j.savedOrderLen]...)
		p.orderOK = true
	} else {
		p.orderOK = false
	}
	p.aritySum = j.savedAritySum
	p.aritySumOK = j.savedAritySumOK
}

// save copy-on-writes node i (a pre-edit index) into the journal.
func (j *Journal) save(p *Program, i int32) {
	if i >= int32(j.oldLen) {
		return // appended during this edit; truncation undoes it
	}
	bit := uint32(1) << uint(i)
	if j.savedSet&bit != 0 {
		return
	}
	j.savedSet |= bit
	j.saved[i] = p.Nodes[i]
}

// noteWrite records a content write to current index i: journal the
// original and mark the node's value column dirty. Must not be called
// after a compaction (mutate moves write first, collect last).
func (j *Journal) noteWrite(p *Program, i int32) {
	if j.compacted {
		panic("prog: content write after GC compaction in the same edit")
	}
	j.save(p, i)
	j.dirty |= 1 << uint(i)
}

// SetOp replaces node i's opcode. With an active journal the original
// node is saved and the node marked dirty. The cached topological
// order survives a same-arity swap (the edge set is unchanged) and is
// invalidated otherwise — a grown arity exposes an Args slot the
// cached order never accounted for. The cached user masks are
// maintained in place: an arity change adds or removes exactly node
// i's edges through the slots it exposes or hides.
func (p *Program) SetOp(i int32, op Op) {
	if p.jr != nil {
		p.jr.noteWrite(p, i)
	}
	nd := &p.Nodes[i]
	oldAr, newAr := nd.Op.Arity(), op.Arity()
	if oldAr != newAr {
		p.orderOK = false
		p.aritySum += newAr - oldAr
		if p.usersOK {
			bit := uint32(1) << uint(i)
			for a := newAr; a < oldAr; a++ { // edges the shrink hides
				t := nd.Args[a]
				keep := false
				for s := 0; s < newAr; s++ {
					if nd.Args[s] == t {
						keep = true
					}
				}
				if !keep {
					p.users[t] &^= bit
				}
			}
			for a := oldAr; a < newAr; a++ { // edges the growth exposes
				p.users[nd.Args[a]] |= bit
			}
		}
	}
	nd.Op = op
}

// SetArg repoints argument slot a of node i at node v and invalidates
// the cached topological order (the edge set changed; the caller's
// acyclicity is its own responsibility). The cached user masks are
// maintained in place — node i stops using the old target (unless
// another live slot still reads it) and starts using v — so the
// mutation layer's per-proposal Ancestors queries never trigger a
// full mask rebuild.
func (p *Program) SetArg(i int32, a int, v int32) {
	if p.jr != nil {
		p.jr.noteWrite(p, i)
	}
	nd := &p.Nodes[i]
	old := nd.Args[a]
	nd.Args[a] = v
	if p.usersOK && a < nd.Op.Arity() {
		bit := uint32(1) << uint(i)
		keep := false
		for s := 0; s < nd.Op.Arity(); s++ {
			if s != a && nd.Args[s] == old {
				keep = true
			}
		}
		if !keep {
			p.users[old] &^= bit
		}
		p.users[v] |= bit
	}
	p.orderOK = false
}

// SetRoot repoints the program root at node v. The root slot carries
// no value column of its own, so nothing is marked dirty, and the
// cached topological order (which covers every node regardless of the
// root) stays valid.
func (p *Program) SetRoot(v int32) { p.Root = v }

// AppendNode appends a body node and returns its index, invalidating
// the cached topological order (the new node is not in it). Appended
// nodes are dirty by construction and are undone by truncation. The
// cached user masks are maintained in place: the new node's slot is
// cleared (it may hold bits from a node truncated at that index) and
// its own edges added.
func (p *Program) AppendNode(n Node) int32 {
	i := int32(len(p.Nodes))
	if p.jr != nil {
		if p.jr.compacted {
			panic("prog: append after GC compaction in the same edit")
		}
		p.jr.dirty |= 1 << uint(i)
	}
	p.Nodes = append(p.Nodes, n)
	p.aritySum += n.Op.Arity()
	if p.usersOK {
		// users[i] needs no clearing: mask slots past the node count are
		// zero by invariant (full rebuilds zero the whole array and
		// Rollback zeroes the slots it truncates). It may legitimately
		// be non-zero already — the instruction move appends nodes whose
		// arguments point forward at constants it appends right after.
		bit := uint32(1) << uint(i)
		for a := 0; a < n.Op.Arity(); a++ {
			p.users[n.Args[a]] |= bit
		}
	}
	p.orderOK = false
	return i
}

// noteCompact records a GC compaction into the journal: remap maps
// pre-compaction indices to post-compaction ones (-1 = removed), n is
// the pre-compaction node count. Called by GC after it has journaled
// the nodes it overwrote and before it rewrites argument indices.
func (j *Journal) noteCompact(remap []int32, n int) {
	if j.compacted {
		panic("prog: second GC compaction in one edit")
	}
	var ns [MaxNodes]int8
	var nd uint32
	for i := 0; i < n; i++ {
		w := remap[i]
		if w < 0 {
			continue
		}
		if i < j.oldLen {
			ns[w] = int8(i)
		} else {
			ns[w] = -1
		}
		if j.dirty&(1<<uint(i)) != 0 {
			nd |= 1 << uint(w)
		}
	}
	j.srcIdx = ns
	j.dirty = nd
	j.compacted = true
}
