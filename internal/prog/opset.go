package prog

import "math/rand/v2"

// ConstPolicy controls how the instruction move materializes new
// constant operands for a given dialect.
type ConstPolicy uint8

const (
	// ConstsInteresting draws constants from a distribution favoring
	// corner cases, small integers, single bits, and masks (the full
	// dialect's policy).
	ConstsInteresting ConstPolicy = iota
	// ConstsZeroOnes draws only 0 and ^0, matching the zero and ones
	// constant operations of the Section 4 model dialect.
	ConstsZeroOnes
)

// OpSet is a dialect: the instruction opcodes available to the search
// plus the policy for generating constants. OpSets are immutable after
// construction.
type OpSet struct {
	name   string
	ops    []Op
	byAr   [MaxArity + 1][]Op // ops grouped by arity
	consts ConstPolicy
}

// NewOpSet builds an OpSet from a list of instruction opcodes. It
// panics if any opcode is not an instruction, so malformed dialects
// fail fast at construction.
func NewOpSet(name string, consts ConstPolicy, ops ...Op) *OpSet {
	s := &OpSet{name: name, consts: consts}
	seen := map[Op]bool{}
	for _, op := range ops {
		if !op.IsInstruction() {
			panic("prog: OpSet includes non-instruction opcode " + op.String())
		}
		if seen[op] {
			continue
		}
		seen[op] = true
		s.ops = append(s.ops, op)
		s.byAr[op.Arity()] = append(s.byAr[op.Arity()], op)
	}
	if len(s.ops) == 0 {
		panic("prog: empty OpSet")
	}
	return s
}

// Name returns the dialect name.
func (s *OpSet) Name() string { return s.name }

// Ops returns the opcodes in the set. Callers must not mutate the
// returned slice.
func (s *OpSet) Ops() []Op { return s.ops }

// Contains reports whether op is in the set.
func (s *OpSet) Contains(op Op) bool {
	for _, o := range s.ops {
		if o == op {
			return true
		}
	}
	return false
}

// RandomOp draws a uniformly random opcode from the set.
func (s *OpSet) RandomOp(rng *rand.Rand) Op {
	return s.ops[rng.IntN(len(s.ops))]
}

// RandomOpArity draws a uniformly random opcode with the given arity,
// or OpInvalid and false if the set has none (the opcode move uses
// this to replace an opcode by another of the same arity).
func (s *OpSet) RandomOpArity(rng *rand.Rand, arity int) (Op, bool) {
	group := s.byAr[arity]
	if len(group) == 0 {
		return OpInvalid, false
	}
	return group[rng.IntN(len(group))], true
}

// RandomConst draws a constant according to the set's policy.
func (s *OpSet) RandomConst(rng *rand.Rand) uint64 {
	if s.consts == ConstsZeroOnes {
		if rng.IntN(2) == 0 {
			return 0
		}
		return ^uint64(0)
	}
	return interestingConst(rng)
}

// interestingConst mirrors bits.InterestingConstant; it is duplicated
// here (rather than importing internal/bits) to keep prog dependency-
// free, and the two are cross-checked by tests.
func interestingConst(rng *rand.Rand) uint64 {
	switch rng.IntN(6) {
	case 0:
		corners := [...]uint64{0, 1, ^uint64(0), 1 << 63, (1 << 63) - 1,
			0x00000000FFFFFFFF, 0xFFFFFFFF00000000, 0x5555555555555555,
			0xAAAAAAAAAAAAAAAA, 2, 4, 8, 16, 0x80}
		return corners[rng.IntN(len(corners))]
	case 1:
		return uint64(int64(rng.IntN(33) - 16))
	case 2:
		return 1 << uint(rng.IntN(64))
	case 3:
		n := 1 + rng.IntN(64)
		if n == 64 {
			return ^uint64(0)
		}
		return (uint64(1) << uint(n)) - 1
	case 4:
		return ^(uint64(1) << uint(rng.IntN(64)))
	default:
		return rng.Uint64()
	}
}

// FullSet is the x86-flavoured dialect used for the SyGuS-style and
// superoptimization benchmarks.
var FullSet = NewOpSet("full", ConstsInteresting,
	OpAdd, OpSub, OpMul, OpDivU, OpRemU, OpDivS, OpRemS,
	OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpRol, OpRor,
	OpEq, OpUlt, OpSlt,
	OpNot, OpNeg, OpBswap, OpPopcnt, OpClz, OpCtz,
	OpSext8, OpSext16, OpSext32, OpZext8, OpZext16, OpZext32,
	OpAdd32, OpSub32, OpMul32, OpAnd32, OpOr32, OpXor32,
	OpShl32, OpShr32, OpSar32, OpNot32, OpNeg32,
)

// ModelSet is the reduced dialect of Section 4 (and, or, xor, not,
// one-bit shifts, plus the zero/ones constants via the constant
// policy), small enough to analyze its search space exhaustively.
var ModelSet = NewOpSet("model", ConstsZeroOnes,
	OpMAnd, OpMOr, OpMXor, OpMNot, OpMShl, OpMShr,
)

// BaseSet is the dialect without the 32-bit variants or bit-scan
// extensions: a middle ground matching the instruction coverage of
// classic superoptimizers, used by some ablation experiments.
var BaseSet = NewOpSet("base", ConstsInteresting,
	OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
	OpShl, OpShr, OpSar, OpNot, OpNeg,
)
