package prog

import (
	"errors"
	"fmt"
	mathbits "math/bits"
)

// MaxBody is the maximum number of body nodes (instructions and
// constants) in a program, the size limit of Section 3.2. Moves that
// would grow a program past this limit are rejected, which bounds the
// per-iteration evaluation cost of the search.
const MaxBody = 16

// MaxInputs is the maximum number of program inputs. Input nodes are
// permanent — one per input, always present so that moves can wire
// operands to them — and do not count against MaxBody.
const MaxInputs = 8

// MaxNodes bounds the total node count (inputs plus body); fixed-size
// scratch buffers are dimensioned by it.
const MaxNodes = MaxInputs + MaxBody

// maxTransient bounds the node count of programs under construction by
// the parser, which may briefly exceed MaxBody before unused bindings
// are collected; the graph algorithms size their scratch space for it.
const maxTransient = 64

// Node is one vertex of the dataflow graph. For instruction nodes the
// first Op.Arity() entries of Args index the argument nodes; for
// OpInput nodes Val is the input index; for OpConst nodes Val is the
// constant value.
type Node struct {
	Op   Op
	Args [MaxArity]int32
	Val  uint64
}

// Program is a rooted dataflow DAG. The first NumInputs entries of
// Nodes are the permanent input nodes (input i at index i); the
// remaining body nodes (instructions and constants) are stored in
// arbitrary order. Root indexes the node whose value is the program's
// result. The exported invariants (checked by Validate) are:
//
//   - Nodes begins with the NumInputs input nodes in order,
//   - the body holds between 1 and MaxBody nodes,
//   - the graph is acyclic,
//   - every body node is reachable from the root (no dead code;
//     input nodes are exempt so that moves can always wire to them),
//   - argument indices are in range and argument counts match arity.
//
// Programs are mutable; the search mutates a scratch copy and swaps it
// in on acceptance.
type Program struct {
	Nodes     []Node
	Root      int32
	NumInputs int

	// order caches a topological order (arguments before users),
	// recomputed lazily after structural changes. orderOK marks the
	// cache valid; the slice's backing array is retained across
	// invalidations so rebuilds are allocation-free.
	order   []int32
	orderOK bool

	// users caches, per node, the bitmask of nodes reading it through
	// an argument edge. Ancestors runs as a bitmask worklist over these
	// masks. Unlike order, the journaling mutators (SetOp, SetArg,
	// AppendNode) maintain the masks in place and Rollback repairs them
	// from the journal, so in the steady state of the search loop
	// (edit, query Ancestors, roll back, repeat) the cache never
	// rebuilds; only GC compaction and raw builders drop it.
	users   [MaxNodes]uint32
	usersOK bool

	// aritySum caches the total argument-slot count over all nodes
	// (the mutation layer's slot-enumeration denominator), maintained
	// through the journaling mutators like users and restored from the
	// journal on Rollback.
	aritySum   int
	aritySumOK bool

	// jr, when non-nil, is the active in-place edit journal (see
	// edit.go): mutating helpers and GC record undo and dirtiness
	// information into it. Clones never inherit an active edit.
	jr *Journal
}

// newBase returns a program containing only the permanent input nodes.
func newBase(numInputs int) *Program {
	if numInputs < 0 || numInputs > MaxInputs {
		panic("prog: input count out of range")
	}
	p := &Program{NumInputs: numInputs}
	for i := 0; i < numInputs; i++ {
		p.Nodes = append(p.Nodes, Node{Op: OpInput, Val: uint64(i)})
	}
	return p
}

// NewZero returns the constant-zero program with the given number of
// inputs; this is the initial state of every search.
func NewZero(numInputs int) *Program { return NewConst(numInputs, 0) }

// NewConst returns the program computing the constant v.
func NewConst(numInputs int, v uint64) *Program {
	p := newBase(numInputs)
	p.Nodes = append(p.Nodes, Node{Op: OpConst, Val: v})
	p.Root = int32(len(p.Nodes) - 1)
	return p
}

// NewInput returns the identity program over input i: the input node
// as root with an empty body.
func NewInput(numInputs, i int) *Program {
	if i < 0 || i >= numInputs {
		panic("prog: input index out of range")
	}
	p := newBase(numInputs)
	p.Root = int32(i)
	return p
}

// Len returns the total number of nodes, inputs included.
func (p *Program) Len() int { return len(p.Nodes) }

// BodyLen returns the number of body nodes (instructions and
// constants), the count limited by MaxBody.
func (p *Program) BodyLen() int { return len(p.Nodes) - p.NumInputs }

// Clone returns a deep copy of p.
func (p *Program) Clone() *Program {
	q := &Program{
		Nodes:     append([]Node(nil), p.Nodes...),
		Root:      p.Root,
		NumInputs: p.NumInputs,
	}
	if p.orderOK {
		q.order = append([]int32(nil), p.order...)
		q.orderOK = true
	}
	return q
}

// CopyFrom overwrites p with the contents of src, reusing p's backing
// storage. It is the allocation-free analogue of Clone used by the
// search's double-buffered proposal loop.
func (p *Program) CopyFrom(src *Program) {
	p.Nodes = append(p.Nodes[:0], src.Nodes...)
	p.Root = src.Root
	p.NumInputs = src.NumInputs
	if src.orderOK {
		p.order = append(p.order[:0], src.order...)
		p.orderOK = true
	} else {
		p.orderOK = false
	}
	p.usersOK = false
	p.aritySum = src.aritySum
	p.aritySumOK = src.aritySumOK
}

// Invalidate drops the cached topological order, user masks, and
// arity sum. Mutators must call it after any structural change. The
// slices' backing memory is retained for the next rebuild.
func (p *Program) Invalidate() {
	p.orderOK = false
	p.usersOK = false
	p.aritySumOK = false
}

// ArityTotal returns the total number of argument slots across all
// nodes, rebuilding the cached sum if needed. The mutation layer uses
// it as the denominator of uniform slot selection.
func (p *Program) ArityTotal() int {
	if !p.aritySumOK {
		s := 0
		for i := range p.Nodes {
			s += p.Nodes[i].Op.Arity()
		}
		p.aritySum = s
		p.aritySumOK = true
	}
	return p.aritySum
}

// userMasks returns the per-node user bitmasks, rebuilding the cache
// if a structural change invalidated it.
func (p *Program) userMasks() *[MaxNodes]uint32 {
	if !p.usersOK {
		p.users = [MaxNodes]uint32{}
		for i := range p.Nodes {
			nd := &p.Nodes[i]
			for a := 0; a < nd.Op.Arity(); a++ {
				p.users[nd.Args[a]] |= 1 << uint(i)
			}
		}
		p.usersOK = true
	}
	return &p.users
}

// TopoOrder returns a topological order of the node indices with
// arguments ordered before their users. The returned slice is owned by
// p and valid until the next structural change. It panics if the graph
// contains a cycle (which Validate reports as an error instead).
func (p *Program) TopoOrder() []int32 {
	if p.orderOK {
		return p.order
	}
	// With at most MaxNodes (16) nodes, a quadratic ready-scan is both
	// simpler and faster than Kahn's algorithm, and allocation-free
	// once the order slice has been grown.
	n := len(p.Nodes)
	order := p.order
	if cap(order) < n {
		order = make([]int32, 0, MaxNodes)
	}
	order = order[:0]
	var placed uint64 // bitmask of nodes already in the order
	for len(order) < n {
		progress := false
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if placed&bit != 0 {
				continue
			}
			nd := &p.Nodes[i]
			ready := true
			for a := 0; a < nd.Op.Arity(); a++ {
				if placed&(uint64(1)<<uint(nd.Args[a])) == 0 {
					ready = false
					break
				}
			}
			if ready {
				order = append(order, int32(i))
				placed |= bit
				progress = true
			}
		}
		if !progress {
			panic("prog: cycle in program graph")
		}
	}
	p.order = order
	p.orderOK = true
	return order
}

// Eval evaluates the program on one input vector, writing every node's
// value into vals (which must have length >= Len()) and returning the
// root value. It performs no heap allocation once the topological
// order is cached.
func (p *Program) Eval(inputs []uint64, vals []uint64) uint64 {
	return p.evalChecked(inputs, vals)
}

// evalChecked is the single shared evaluation body behind Program.Eval
// and EvalInto: every non-engine evaluation, hot or fallback, goes
// through the same explicit bounds validation so a short buffer fails
// loudly at the seam instead of as an index panic mid-loop (or, worse,
// silently when a longer backing array happens to absorb the write).
func (p *Program) evalChecked(inputs, vals []uint64) uint64 {
	if len(inputs) < p.NumInputs {
		panic("prog: Eval input vector shorter than the program's input arity")
	}
	if len(vals) < len(p.Nodes) {
		panic("prog: Eval value buffer shorter than the program's node count")
	}
	order := p.TopoOrder()
	for _, i := range order {
		nd := &p.Nodes[i]
		switch nd.Op {
		case OpInput:
			vals[i] = inputs[nd.Val]
		case OpConst:
			vals[i] = nd.Val
		default:
			var a, b uint64
			a = vals[nd.Args[0]]
			if nd.Op.Arity() == 2 {
				b = vals[nd.Args[1]]
			}
			vals[i] = evalOp(nd.Op, a, b)
		}
	}
	return vals[p.Root]
}

// Output evaluates the program on one input vector and returns only
// the root value, allocating a scratch buffer internally. Convenient
// for non-hot-path callers.
func (p *Program) Output(inputs []uint64) uint64 {
	var vals [MaxNodes]uint64
	return p.Eval(inputs, vals[:])
}

// Reachable computes the set of nodes reachable from the root as a
// bitmask (bit i set means node i is reachable).
func (p *Program) Reachable() uint64 {
	return p.reachableFrom(p.Root)
}

// reachableFrom computes the set of nodes reachable from start
// (inclusive) following argument edges, as a bitmask.
func (p *Program) reachableFrom(start int32) uint64 {
	var mask uint64
	var stack [maxTransient]int32
	sp := 0
	stack[sp] = start
	sp++
	for sp > 0 {
		sp--
		v := stack[sp]
		bit := uint64(1) << uint(v)
		if mask&bit != 0 {
			continue
		}
		mask |= bit
		nd := &p.Nodes[v]
		for a := 0; a < nd.Op.Arity(); a++ {
			stack[sp] = nd.Args[a]
			sp++
		}
	}
	return mask
}

// ReachesFrom reports whether node to is reachable from node from by
// following argument edges (including from == to). Redirecting an
// argument of node u to point at node v creates a cycle exactly when u
// is reachable from v.
func (p *Program) ReachesFrom(from, to int32) bool {
	return p.reachableFrom(from)&(uint64(1)<<uint(to)) != 0
}

// ReachableFrom computes the set of nodes reachable from start
// (inclusive) following argument edges, as a bitmask. It is the
// exported form of reachableFrom for callers that test many
// memberships against one source (one DFS instead of one per test).
func (p *Program) ReachableFrom(start int32) uint64 {
	return p.reachableFrom(start)
}

// Ancestors returns the bitmask of nodes from which node to is
// reachable along argument edges (including to itself) — exactly the
// set {u : ReachesFrom(u, to)} — as the transitive-user closure of to
// over the cached user masks. The bitmask worklist touches only the
// ancestors themselves instead of scanning the whole program (or
// running one DFS per node). The mutator's cycle-avoidance checks use
// it to classify every node at once.
func (p *Program) Ancestors(to int32) uint64 {
	users := p.userMasks()
	mask := uint32(1) << uint(to)
	for work := mask; work != 0; {
		i := mathbits.TrailingZeros32(work)
		work &^= 1 << uint(i)
		nu := users[i] &^ mask
		mask |= nu
		work |= nu
	}
	return uint64(mask)
}

// GC removes body nodes unreachable from the root, compacting Nodes
// and remapping indices; the permanent input nodes are always kept. It
// returns the number of nodes removed. Mutators call it after
// redirecting edges so the no-dead-code invariant holds.
//
// With an active edit journal, GC copy-on-writes every slot it
// overwrites (so Rollback restores the pre-edit program exactly) and
// records the index remap, which the incremental evaluation engine
// uses to re-home surviving value columns. Moved and arg-remapped
// nodes are not marked value-dirty: compaction renumbers the DAG but
// never changes what any surviving node computes.
func (p *Program) GC() int {
	n := len(p.Nodes)
	if p.usersOK {
		// Exact no-dead-code test, no graph walk: in a DAG, a nonempty
		// dead set always contains a topologically maximal node, and
		// nothing at all reads that node (a reader would be dead and
		// later), so its user mask is empty. Conversely an unread
		// non-root body node is trivially dead. Most moves leave no
		// dead nodes, so this skips the reachability DFS entirely.
		hasDead := false
		for i := p.NumInputs; i < n; i++ {
			if p.users[i] == 0 && int32(i) != p.Root {
				hasDead = true
				break
			}
		}
		if !hasDead {
			return 0
		}
	}
	mask := p.Reachable()
	full := (uint64(1) << uint(n)) - 1
	inputMask := (uint64(1) << uint(p.NumInputs)) - 1
	mask |= inputMask // inputs are permanent
	if mask == full {
		return 0
	}
	j := p.jr
	var remap [maxTransient]int32
	w := 0
	for i := 0; i < n; i++ {
		if mask&(uint64(1)<<uint(i)) != 0 {
			remap[i] = int32(w)
			if w != i {
				if j != nil {
					j.save(p, int32(w))
				}
				p.Nodes[w] = p.Nodes[i]
			}
			w++
		} else {
			remap[i] = -1
		}
	}
	removed := n - w
	p.Nodes = p.Nodes[:w]
	for i := 0; i < w; i++ {
		nd := &p.Nodes[i]
		for a := 0; a < nd.Op.Arity(); a++ {
			if na := remap[nd.Args[a]]; na != nd.Args[a] {
				if j != nil {
					j.save(p, int32(i))
				}
				nd.Args[a] = na
			}
		}
	}
	p.Root = remap[p.Root]
	if j != nil {
		j.noteCompact(remap[:n], n)
	}
	p.Invalidate()
	return removed
}

// Validate checks all structural invariants and returns a descriptive
// error for the first violation found.
func (p *Program) Validate() error {
	n := len(p.Nodes)
	if p.NumInputs < 0 || p.NumInputs > MaxInputs {
		return fmt.Errorf("prog: input count %d out of range [0, %d]", p.NumInputs, MaxInputs)
	}
	if n < p.NumInputs {
		return errors.New("prog: missing permanent input nodes")
	}
	if body := n - p.NumInputs; body > MaxBody {
		return fmt.Errorf("prog: %d body nodes exceeds limit %d", body, MaxBody)
	}
	if p.Root < 0 || int(p.Root) >= n {
		return fmt.Errorf("prog: root index %d out of range", p.Root)
	}
	for i, nd := range p.Nodes {
		switch {
		case i < p.NumInputs:
			if nd.Op != OpInput || nd.Val != uint64(i) {
				return fmt.Errorf("prog: node %d must be the permanent input %d node", i, i)
			}
			continue
		case nd.Op == OpInput:
			return fmt.Errorf("prog: body node %d duplicates input %d", i, nd.Val)
		case nd.Op == OpInvalid || int(nd.Op) >= NumOps:
			return fmt.Errorf("prog: node %d has invalid opcode %d", i, nd.Op)
		}
		for a := 0; a < nd.Op.Arity(); a++ {
			if nd.Args[a] < 0 || int(nd.Args[a]) >= n {
				return fmt.Errorf("prog: node %d argument %d index %d out of range", i, a, nd.Args[a])
			}
		}
		// Unused operand slots must stay zero so that structural
		// comparison and hashing never observe stale wiring left
		// behind by a mutator that shrank a node's arity.
		for a := nd.Op.Arity(); a < MaxArity; a++ {
			if nd.Args[a] != 0 {
				return fmt.Errorf("prog: node %d (%s) has stale operand index %d in unused slot %d", i, nd.Op, nd.Args[a], a)
			}
		}
	}
	// Acyclicity: topological sort must cover all nodes.
	if err := p.checkAcyclic(); err != nil {
		return err
	}
	// No dead code among body nodes.
	mask := p.Reachable() | (uint64(1)<<uint(p.NumInputs) - 1)
	if full := (uint64(1) << uint(n)) - 1; mask != full {
		return fmt.Errorf("prog: dead body nodes present (reachable mask %#x of %#x)", mask, full)
	}
	return nil
}

// checkAcyclic is a non-panicking cycle check.
func (p *Program) checkAcyclic() error {
	n := len(p.Nodes)
	var state [maxTransient]uint8 // 0 unvisited, 1 on stack, 2 done
	var visit func(int32) error
	visit = func(v int32) error {
		switch state[v] {
		case 1:
			return fmt.Errorf("prog: cycle through node %d", v)
		case 2:
			return nil
		}
		state[v] = 1
		nd := &p.Nodes[v]
		for a := 0; a < nd.Op.Arity(); a++ {
			if err := visit(nd.Args[a]); err != nil {
				return err
			}
		}
		state[v] = 2
		return nil
	}
	for i := 0; i < n; i++ {
		if err := visit(int32(i)); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports structural equality of two programs (same nodes in the
// same order with the same root). Semantically equal programs may
// compare unequal; use Canon for a structure-insensitive key.
func (p *Program) Equal(q *Program) bool {
	if p.Root != q.Root || p.NumInputs != q.NumInputs || len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i := range p.Nodes {
		a, b := p.Nodes[i], q.Nodes[i]
		if a.Op != b.Op || a.Val != b.Val {
			return false
		}
		for k := 0; k < a.Op.Arity(); k++ {
			if a.Args[k] != b.Args[k] {
				return false
			}
		}
	}
	return true
}
