package eqsat

import (
	"sync"

	"stochsyn/internal/prog"
)

// Dedup is the rewrite-equivalence memo the restart and search layers
// share when stochsyn.Options.EqSat is on. It answers two questions:
//
//   - Seed: has a restart already started from a program in this
//     e-class? (The adaptive tree then knows the fresh leaf re-treads
//     explored territory.)
//   - Visited: has the search already wandered onto this e-class on a
//     plateau at the same (or lower) cost? If so the cost-neutral move
//     is rejected, pushing the walk toward genuinely new states.
//
// Hashing every proposal would dwarf the search loop, so plateau
// checks are sampled (one in sampleEvery cost-neutral acceptances) and
// the total number of saturations is capped; past the cap Dedup turns
// itself off and the search continues exactly as without it. All
// methods are nil-safe so call sites need no guards.
type Dedup struct {
	mu          sync.Mutex
	budget      Budget
	sampleEvery int
	maxHashes   int
	tick        int64
	plateau     map[uint64]float64
	seeds       map[uint64]bool
	stats       DedupStats
}

// DedupStats counts the memo's activity plus the aggregated e-graph
// statistics of every hash it computed.
type DedupStats struct {
	// Checks counts plateau proposals actually hashed (post-sampling);
	// Hits counts those rejected as already-visited.
	Checks int64
	Hits   int64
	// Seeds counts restart seeds hashed; SeedDups counts seeds whose
	// e-class had already started a search.
	Seeds    int64
	SeedDups int64
	// EqSat aggregates the e-graph stats across all hashes.
	EqSat Stats
}

// NewDedup returns a memo saturating under b (normalized). The
// sampling rate and saturation cap are fixed: they bound worst-case
// overhead, and since Options.EqSat deliberately changes trajectories
// there is no bit-identity contract to tune them against.
func NewDedup(b Budget) *Dedup {
	return &Dedup{
		budget:      b.normalized(),
		sampleEvery: 16,
		maxHashes:   4096,
		plateau:     make(map[uint64]float64),
		seeds:       make(map[uint64]bool),
	}
}

// Visited records a cost-neutral accepted proposal and reports whether
// its e-class was already visited at cost <= c (in which case the
// caller should reject the move). Only one in sampleEvery calls
// actually hashes; unsampled calls always report false.
func (d *Dedup) Visited(p *prog.Program, c float64) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	if d.tick%int64(d.sampleEvery) != 0 {
		return false
	}
	if d.stats.Checks+d.stats.Seeds >= int64(d.maxHashes) {
		return false
	}
	h, st := EClassHash(p, d.budget)
	d.stats.EqSat.Accumulate(st)
	d.stats.Checks++
	if prev, ok := d.plateau[h]; ok && prev <= c {
		d.stats.Hits++
		return true
	}
	if prev, ok := d.plateau[h]; !ok || prev > c {
		d.plateau[h] = c
	}
	return false
}

// Seed records a restart's start program and reports whether a
// rewrite-equivalent seed already started a search.
func (d *Dedup) Seed(p *prog.Program) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stats.Checks+d.stats.Seeds >= int64(d.maxHashes) {
		return false
	}
	h, st := EClassHash(p, d.budget)
	d.stats.EqSat.Accumulate(st)
	d.stats.Seeds++
	if d.seeds[h] {
		d.stats.SeedDups++
		return true
	}
	d.seeds[h] = true
	return false
}

// Stats returns a snapshot of the memo's counters.
func (d *Dedup) Stats() DedupStats {
	if d == nil {
		return DedupStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
