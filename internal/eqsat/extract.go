package eqsat

import (
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
)

// Extraction node costs mirror cost.OfColumn's size term: inputs are
// free (they always exist), constants and instructions each cost one
// emitted body node. Tree cost — not DAG cost — is minimized, which
// makes the children of any minimum-cost enode themselves minimum-cost
// and lets extraction finalize classes in strictly increasing cost
// order.
const infCost = int(1) << 30

// Extract returns the minimum-cost program equivalent to class root,
// or false when no finite-cost term exists (impossible for classes
// reached from AddProgram) or the result does not fit prog's body
// limit. Ties between equal-cost enodes are broken by a canonical
// expression key, which depends only on the terms — never on class
// ids — so equal graphs extract byte-identical programs.
func (g *EGraph) Extract(root classID, numInputs int) (*prog.Program, bool) {
	g.stats.Extractions++
	root = g.find(root)
	n := len(g.classes)

	// Fixpoint the per-class minimum tree cost. Classes whose fact is
	// empty are cut up front: an empty fact means no concrete value can
	// inhabit the class (an unsoundness canary — see FactConflicts), so
	// nothing may be extracted from or through it.
	cost := make([]int, n)
	for i := range cost {
		cost[i] = infCost
	}
	for c := 0; c < n; c++ {
		cls := g.classes[c]
		if cls != nil && g.find(classID(c)) == classID(c) && cls.fact.Empty() {
			g.stats.EmptyClasses++
		}
	}
	for {
		changed := false
		for c := 0; c < n; c++ {
			cls := g.classes[c]
			if cls == nil || g.find(classID(c)) != classID(c) || cls.fact.Empty() {
				continue
			}
			for _, nd := range cls.nodes {
				if nc := g.nodeCost(nd, cost); nc < cost[c] {
					cost[c] = nc
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	if cost[root] >= infCost {
		return nil, false
	}

	// Choose each class's enode in increasing cost order: every child
	// of a minimum-cost enode has strictly smaller cost, so its key is
	// final when the parent is decided.
	reps := make([]classID, 0, n)
	for c := 0; c < n; c++ {
		if g.classes[c] != nil && g.find(classID(c)) == classID(c) && cost[c] < infCost {
			reps = append(reps, classID(c))
		}
	}
	sort.Slice(reps, func(i, j int) bool {
		if cost[reps[i]] != cost[reps[j]] {
			return cost[reps[i]] < cost[reps[j]]
		}
		return reps[i] < reps[j]
	})
	chosen := make([]enode, n)
	key := make([]string, n)
	for _, c := range reps {
		best := ""
		var bestNode enode
		for _, nd := range g.classes[c].nodes {
			if g.nodeCost(nd, cost) != cost[c] {
				continue
			}
			k := g.nodeKey(nd, key)
			if best == "" || k < best {
				best, bestNode = k, nd
			}
		}
		key[c], chosen[c] = best, bestNode
	}

	// Emit the chosen tree as a program, memoized per class so shared
	// subterms become shared nodes.
	out := &prog.Program{NumInputs: numInputs}
	for i := 0; i < numInputs; i++ {
		out.Nodes = append(out.Nodes, prog.Node{Op: prog.OpInput, Val: uint64(i)})
	}
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	var emit func(classID) int32
	emit = func(c classID) int32 {
		c = g.find(c)
		if remap[c] >= 0 {
			return remap[c]
		}
		nd := chosen[c]
		if nd.op == prog.OpInput {
			remap[c] = int32(nd.val)
			return remap[c]
		}
		var nn prog.Node
		nn.Op = nd.op
		if nd.op == prog.OpConst {
			nn.Val = nd.val
		} else {
			nn.Args[0] = emit(nd.a)
			if nd.op.Arity() == 2 {
				nn.Args[1] = emit(nd.b)
			}
		}
		remap[c] = int32(len(out.Nodes))
		out.Nodes = append(out.Nodes, nn)
		return remap[c]
	}
	out.Root = emit(root)
	if out.BodyLen() > prog.MaxBody || out.Validate() != nil {
		return nil, false
	}
	return out, true
}

// nodeCost is nd's tree cost given the current per-class costs.
func (g *EGraph) nodeCost(nd enode, cost []int) int {
	switch {
	case nd.op == prog.OpInput:
		return 0
	case nd.op == prog.OpConst:
		return 1
	}
	ca := cost[g.find(nd.a)]
	if ca >= infCost {
		return infCost
	}
	total := 1 + ca
	if nd.op.Arity() == 2 {
		cb := cost[g.find(nd.b)]
		if cb >= infCost {
			return infCost
		}
		total += cb
	}
	return total
}

// nodeKey renders nd as a canonical expression string over its
// children's (already final) keys, sorting commutative children so the
// key is independent of class-id assignment.
func (g *EGraph) nodeKey(nd enode, key []string) string {
	switch {
	case nd.op == prog.OpInput:
		return "i" + strconv.FormatUint(nd.val, 10)
	case nd.op == prog.OpConst:
		return "c" + strconv.FormatUint(nd.val, 16)
	}
	ka := key[g.find(nd.a)]
	if nd.op.Arity() == 1 {
		return nd.op.String() + "(" + ka + ")"
	}
	kb := key[g.find(nd.b)]
	if prog.Commutative(nd.op) && kb < ka {
		ka, kb = kb, ka
	}
	var sb strings.Builder
	sb.WriteString(nd.op.String())
	sb.WriteByte('(')
	sb.WriteString(ka)
	sb.WriteByte(',')
	sb.WriteString(kb)
	sb.WriteByte(')')
	return sb.String()
}

// Simplify saturates p under b and extracts the minimum-cost
// equivalent, canonicalized. Extraction is trusted only after passing
// prog.Validate and a deterministic Eval-equality battery; anything
// else falls back to the canonicalized input (counted in
// Stats.Fallbacks), so Simplify never returns a program that computes
// a different function than p.
func Simplify(p *prog.Program, b Budget) (*prog.Program, Stats) {
	g := New(b)
	var q *prog.Program
	if root, ok := g.AddProgram(p); ok {
		g.Saturate()
		if ex, ok := g.Extract(root, p.NumInputs); ok && evalEqual(p, ex) {
			q = ex
		}
	}
	st := g.Stats()
	if q == nil {
		st.Fallbacks++
		q = p
	}
	return analysis.Canonicalize(q), st
}

// EClassHash keys rewrite equivalence: the 64-bit semantic hash of p's
// saturated, extracted, canonicalized form. Programs the rule set can
// prove equal — including across associativity respellings the
// canonicalizer cannot cross — hash identically; the hash is a pure
// function of p and b.
func EClassHash(p *prog.Program, b Budget) (uint64, Stats) {
	q, st := Simplify(p, b)
	return analysis.Hash(q), st
}

// evalEqual checks p and q agree on a fixed battery of corner-case and
// pseudorandom input vectors. The seed is a constant: the check is
// deterministic, so a flaky extraction can never alternate between
// accepted and rejected across runs.
func evalEqual(p, q *prog.Program) bool {
	if p.NumInputs != q.NumInputs {
		return false
	}
	corners := []uint64{
		0, 1, 2, 63, 64, ^uint64(0), ^uint64(0) - 1,
		1 << 63, 1<<63 - 1, 0xffffffff, 1 << 32, 0x0123456789abcdef,
	}
	in := make([]uint64, p.NumInputs)
	for _, v := range corners {
		for i := range in {
			in[i] = v
		}
		if p.Output(in) != q.Output(in) {
			return false
		}
	}
	rng := rand.New(rand.NewPCG(0x5eed5eed5eed5eed, 0xec1a55e0ec1a55e0))
	for t := 0; t < 64; t++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		if p.Output(in) != q.Output(in) {
			return false
		}
	}
	return true
}
