package eqsat

import (
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
	"stochsyn/internal/prog/analysis/absint"
)

// Budget bounds one saturation run. Saturation cost is capped twice
// over: MaxNodes bounds the e-nodes (and therefore classes) ever
// created, MaxIters bounds the rule passes. Hitting either cap leaves
// a sound, deterministic — just less saturated — graph.
type Budget struct {
	// MaxNodes caps e-nodes created over the graph's lifetime.
	// 0 means the default (512); values below 64 are raised to 64 so
	// AddProgram can always hold a full program (prog.MaxNodes = 24).
	MaxNodes int
	// MaxIters caps saturation passes. 0 means the default (8).
	MaxIters int
}

// DefaultBudget is the budget used when callers pass Budget{}.
func DefaultBudget() Budget { return Budget{}.normalized() }

func (b Budget) normalized() Budget {
	if b.MaxNodes <= 0 {
		b.MaxNodes = 512
	}
	if b.MaxNodes < 64 {
		b.MaxNodes = 64
	}
	if b.MaxIters <= 0 {
		b.MaxIters = 8
	}
	return b
}

// assocOps lists the operators the expansion rules treat as
// associative. All are also commutative, so together with the
// hashcons's commutative argument sorting the two rotations below
// reach every reassociation over a few passes. The 32-bit operators
// are deliberately excluded: their zero-extension makes mixed-width
// reasoning easy to get wrong, and the shared rule table already
// covers their profitable identities.
var assocOps = [prog.NumOps]bool{
	prog.OpAdd:  true,
	prog.OpMul:  true,
	prog.OpAnd:  true,
	prog.OpOr:   true,
	prog.OpXor:  true,
	prog.OpMAnd: true,
	prog.OpMOr:  true,
	prog.OpMXor: true,
}

// Saturate runs rule passes until fixpoint or the iteration budget.
// Each pass visits classes in id order and, per class: folds constant
// applications, matches the shared algebraic rule table, and applies
// the associativity expansion rules; congruence is repaired between
// passes. A pass that changes nothing is a fixpoint.
func (g *EGraph) Saturate() {
	g.stats.Saturations++
	for it := 0; it < g.budget.MaxIters; it++ {
		g.stats.Iters++
		changed := g.step()
		g.rebuild()
		if !changed {
			g.saturated = true
			break
		}
	}
}

// step runs one saturation pass. Classes created during the pass are
// deliberately not visited until the next pass (the snapshot bound),
// so a pass's work is a function of the pass-start graph only.
func (g *EGraph) step() bool {
	changed := false
	limit := classID(len(g.classes))
	for c := classID(0); c < limit; c++ {
		if g.classes[c] == nil || g.find(c) != c {
			continue
		}
		if g.foldClass(c) {
			changed = true
		}
		if g.factConst(c) {
			changed = true
		}
		if g.applyRules(c) {
			changed = true
		}
		if g.expandAssoc(c) {
			changed = true
		}
	}
	return changed
}

// foldClass merges c with a constant class when any member enode has
// all-constant argument classes. One fold per pass suffices: the
// resulting constant propagates through parents via congruence.
func (g *EGraph) foldClass(c classID) bool {
	cls := g.classes[g.find(c)]
	if cls.hasConst {
		return false
	}
	nodes := append([]enode(nil), cls.nodes...)
	for _, n := range nodes {
		if !n.op.IsInstruction() {
			continue
		}
		av, ok := g.classConst(n.a)
		if !ok {
			continue
		}
		var bv uint64
		if n.op.Arity() == 2 {
			if bv, ok = g.classConst(n.b); !ok {
				continue
			}
		}
		id, added := g.Add(enode{op: prog.OpConst, val: prog.EvalOp(n.op, av, bv)})
		if !added {
			return false
		}
		return g.union(c, id)
	}
	return false
}

// applyRules matches the shared rule table against every member of c,
// unioning c with each rule's replacement. Rules are additive here:
// all matches fire (the simplifier applies only the first).
func (g *EGraph) applyRules(c classID) bool {
	cls := g.classes[g.find(c)]
	nodes := append([]enode(nil), cls.nodes...)
	changed := false
	for _, n := range nodes {
		if !n.op.IsInstruction() {
			continue
		}
		s := egSubject{g: g, n: n}
		for _, r := range analysis.RulesFor(n.op) {
			switch act := r.Match(s); act.Kind {
			case analysis.ActConst:
				if id, ok := g.Add(enode{op: prog.OpConst, val: act.Val}); ok && g.union(c, id) {
					changed = true
				}
			case analysis.ActRef:
				if g.union(c, act.Ref) {
					changed = true
				}
			}
		}
	}
	return changed
}

// expandAssoc applies the two associativity rotations to every member
// of c whose operator is in assocOps:
//
//	(x ∘ y) ∘ z  =  x ∘ (y ∘ z)        (left rotation)
//	x ∘ (y ∘ z)  =  (x ∘ y) ∘ z        (right rotation)
//
// These are the expansion rules that make EClassHash strictly coarser
// than the canonical hash: the destructive simplifier cannot cross an
// associativity respelling, the e-graph can.
func (g *EGraph) expandAssoc(c classID) bool {
	cls := g.classes[g.find(c)]
	nodes := append([]enode(nil), cls.nodes...)
	changed := false
	for _, n := range nodes {
		if int(n.op) >= prog.NumOps || !assocOps[n.op] {
			continue
		}
		// A member m = P∘Q inside either argument class turns n into an
		// expression over three operands {P, Q, other}; since every
		// assoc op is also commutative (and the hashcons sorts
		// commutative arguments, erasing left/right distinctions), BOTH
		// regroupings must be added or the rotation can regenerate the
		// node it started from:
		//
		//	(P∘Q)∘B  =  P∘(Q∘B)  =  Q∘(P∘B)
		la := append([]enode(nil), g.classes[g.find(n.a)].nodes...)
		for _, m := range la {
			if m.op != n.op {
				continue
			}
			if g.regroup(c, n.op, m.a, m.b, n.b) {
				changed = true
			}
		}
		rb := append([]enode(nil), g.classes[g.find(n.b)].nodes...)
		for _, m := range rb {
			if m.op != n.op {
				continue
			}
			if g.regroup(c, n.op, m.a, m.b, n.a) {
				changed = true
			}
		}
	}
	return changed
}

// regroup unions c with both regroupings of the commutative-
// associative expression p ∘ q ∘ r, where (p∘q) was the existing
// grouping and r the remaining operand.
func (g *EGraph) regroup(c classID, op prog.Op, p, q, r classID) bool {
	changed := false
	for _, pair := range [2][2]classID{{q, p}, {p, q}} {
		inner, ok := g.Add(enode{op: op, a: pair[0], b: r})
		if !ok {
			continue
		}
		outer, ok := g.Add(enode{op: op, a: pair[1], b: inner})
		if !ok {
			continue
		}
		if g.union(c, outer) {
			changed = true
		}
	}
	return changed
}

// egSubject adapts one enode to the rule table's Subject interface:
// Refs are representative class ids, constants are class-level values
// established by folding.
type egSubject struct {
	g *EGraph
	n enode
}

func (s egSubject) Op() prog.Op { return s.n.op }

func (s egSubject) Arg(k int) analysis.Ref {
	if k == 0 {
		return s.g.find(s.n.a)
	}
	return s.g.find(s.n.b)
}

func (s egSubject) Const(r analysis.Ref) (uint64, bool) {
	return s.g.classConst(r)
}

// ArgOf scans r's members (sorted order) for an application of op,
// returning its first argument's class. Unlike the program-node
// adapter this matches any member, which is what makes rules like the
// involutions fire across previously-merged classes.
func (s egSubject) ArgOf(r analysis.Ref, op prog.Op) (analysis.Ref, bool) {
	cls := s.g.classes[s.g.find(r)]
	for _, m := range cls.nodes {
		if m.op == op {
			return s.g.find(m.a), true
		}
	}
	return 0, false
}

// Fact returns the class-level abstract value maintained by the
// e-class analysis (the meet over every member's transfer result) —
// this is what lets the fact-conditioned rules fire across classes.
func (s egSubject) Fact(r analysis.Ref) (absint.Value, bool) {
	return s.g.classes[s.g.find(r)].fact, true
}
