package eqsat

import (
	"testing"
)

// TestEqSatSmoke is the `make ci` eqsat gate: saturate and extract a
// fixed fixture suite and assert the e-class counts, e-node counts,
// extraction spellings, and EClassHash values are byte-stable — both
// against the committed goldens (cross-run stability) and between two
// in-process runs (no map-iteration or allocation-order leaks). Any
// intentional rule-table or extraction change must update the goldens;
// an unintentional diff here is a determinism regression.
func TestEqSatSmoke(t *testing.T) {
	golden := []struct {
		expr    string
		inputs  int
		extract string
		hash    uint64
		classes int
		nodes   int
	}{
		{"addq(addq(x, 1), 2)", 1, "addq(3, x)", 0x65ec9ae8695e7924, 7, 10},
		{"andq(andq(x, y), z)", 3, "andq(andq(x, y), z)", 0x28da5eb99e10f800, 7, 9},
		{"xorq(xorq(x, y), y)", 2, "x", 0x5d3b85692a575606, 4, 10},
		{"mulq(mulq(x, 2), 4)", 1, "mulq(8, x)", 0x8eb705d80e9cc3a9, 7, 10},
		{"orq(orq(x, y), orq(x, z))", 3, "orq(orq(y, z), x)", 0x86716cf3131edbc0, 7, 14},
		{"subq(x, subq(x, x))", 1, "x", 0x56277359bda9cd65, 2, 4},
		{"notq(notq(addq(x, y)))", 2, "addq(x, y)", 0xbb7dbf4f2b240746, 4, 5},
		{"shlq(x, andq(y, 63))", 2, "shlq(x, y)", 0x08cd11c6a5f7dc08, 5, 5},
		{"zextlq(addl(x, y))", 2, "addl(x, y)", 0x4323944f5d8d7ea4, 3, 4},
		{"popcntq(andq(x, subq(x, 1)))", 1, "popcntq(andq(subq(x, 1), x))", 0x02e76d1b817d9db4, 5, 5},
	}
	for run := 0; run < 2; run++ {
		for _, tc := range golden {
			p := parse(t, tc.expr, tc.inputs)
			h, st := EClassHash(p, Budget{})
			q, _ := Simplify(p, Budget{})
			if h != tc.hash {
				t.Errorf("run %d: EClassHash(%q) = %016x, want %016x", run, tc.expr, h, tc.hash)
			}
			if got := q.String(); got != tc.extract {
				t.Errorf("run %d: Simplify(%q) = %q, want %q", run, tc.expr, got, tc.extract)
			}
			if st.Classes != tc.classes || st.Nodes != tc.nodes {
				t.Errorf("run %d: %q: %d classes / %d e-nodes, want %d / %d",
					run, tc.expr, st.Classes, st.Nodes, tc.classes, tc.nodes)
			}
			if !st.Saturated {
				t.Errorf("run %d: %q did not reach an uncapped fixpoint", run, tc.expr)
			}
		}
	}
}
