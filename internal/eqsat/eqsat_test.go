package eqsat

import (
	"testing"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
)

func parse(t *testing.T, expr string, inputs int) *prog.Program {
	t.Helper()
	p, err := prog.Parse(expr, inputs)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return p
}

// Rewrite-equivalent respellings that the canonicalizer alone cannot
// collapse must share an EClassHash. Each pair is checked to be
// canonically DISTINCT first, so this test fails if the canonicalizer
// ever grows strong enough to make the pair trivial (pick a harder
// pair then).
func TestEClassHashMergesBeyondCanon(t *testing.T) {
	pairs := []struct {
		a, b   string
		inputs int
	}{
		// Associativity + constant folding across the respelling.
		{"addq(addq(x, 1), 2)", "addq(x, 3)", 1},
		// Pure reassociation over three variables.
		{"andq(andq(x, y), z)", "andq(x, andq(y, z))", 3},
		// Pure reassociation, other operator.
		{"orq(orq(x, y), z)", "orq(x, orq(y, z))", 3},
		// xor chain: (x^y)^y = x^(y^y) = x^0 = x.
		{"xorq(xorq(x, y), y)", "x", 2},
		// Multiplication reassociation with folding.
		{"mulq(mulq(x, 2), 4)", "mulq(x, 8)", 1},
	}
	for _, tc := range pairs {
		pa, pb := parse(t, tc.a, tc.inputs), parse(t, tc.b, tc.inputs)
		ca := analysis.Hash(analysis.Canonicalize(pa))
		cb := analysis.Hash(analysis.Canonicalize(pb))
		if ca == cb {
			t.Errorf("pair (%q, %q) already collapses canonically; pick a harder witness", tc.a, tc.b)
			continue
		}
		ha, _ := EClassHash(pa, Budget{})
		hb, _ := EClassHash(pb, Budget{})
		if ha != hb {
			t.Errorf("EClassHash(%q) = %016x != EClassHash(%q) = %016x", tc.a, ha, tc.b, hb)
		}
	}
}

// Inequivalent programs must keep distinct hashes.
func TestEClassHashDistinguishes(t *testing.T) {
	exprs := []string{"addq(x, 1)", "addq(x, 2)", "subq(x, 1)", "x", "mulq(x, x)"}
	seen := map[uint64]string{}
	for _, e := range exprs {
		h, _ := EClassHash(parse(t, e, 1), Budget{})
		if prev, ok := seen[h]; ok {
			t.Errorf("%q and %q collide at %016x", prev, e, h)
		}
		seen[h] = e
	}
}

// Extraction must find the minimum-cost member: identities collapse to
// their operand, constant subtrees fold.
func TestExtractMinimal(t *testing.T) {
	cases := []struct {
		expr   string
		inputs int
		want   string
	}{
		{"subq(x, subq(x, x))", 1, "x"},                  // x - (x-x) = x - 0 = x
		{"orq(andq(x, x), 0)", 1, "x"},                   // identity chain
		{"addq(addq(x, 1), 0xffffffffffffffff)", 1, "x"}, // +1 then -1
		{"mulq(addq(x, 0), 1)", 1, "x"},
		{"notq(notq(addq(x, y)))", 2, "addq(x, y)"},
	}
	for _, tc := range cases {
		p := parse(t, tc.expr, tc.inputs)
		q, st := Simplify(p, Budget{})
		if got := q.String(); got != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q (stats %+v)", tc.expr, got, tc.want, st)
		}
	}
}

// The equivalence table: a broad sweep of expressions whose saturated
// extraction must be Eval-equal to the input (FuzzEqSat covers random
// programs; this pins tricky hand-written shapes, including the exact
// x86 semantics corners: masked shifts, div-by-zero, 32-bit
// zero-extension).
func TestExtractionEvalEqualTable(t *testing.T) {
	cases := []struct {
		expr   string
		inputs int
	}{
		{"addq(addq(x, y), addq(x, y))", 2},
		{"shlq(x, 64)", 1},
		{"shlq(x, y)", 2},
		{"divq(x, subq(y, y))", 2},
		{"idivq(x, 0xffffffffffffffff)", 1},
		{"remq(addq(x, 1), addq(x, 1))", 1},
		{"zextlq(addl(x, y))", 2},
		{"shll(x, 32)", 1},
		{"orl(x, 0xffffffff)", 1},
		{"sarq(0xffffffffffffffff, x)", 1},
		{"bswapq(bswapq(xorq(x, y)))", 2},
		{"mulq(mulq(x, mulq(y, z)), mulq(x, y))", 3},
		{"andq(orq(x, y), andq(x, orq(x, y)))", 2},
		{"xorq(xorq(xorq(x, y), z), xorq(y, z))", 3},
		{"sltq(subq(x, y), subq(x, y))", 2},
		{"eqq(x, x)", 1},
		{"popcntq(andq(x, subq(x, 1)))", 1},
	}
	battery := [][]uint64{}
	vals := []uint64{0, 1, 63, 64, ^uint64(0), 1 << 63, 0xffffffff, 0x123456789abcdef}
	for _, tc := range cases {
		p := parse(t, tc.expr, tc.inputs)
		q, st := Simplify(p, Budget{})
		if err := q.Validate(); err != nil {
			t.Fatalf("Simplify(%q) invalid: %v", tc.expr, err)
		}
		_ = battery
		in := make([]uint64, tc.inputs)
		var sweep func(k int)
		sweep = func(k int) {
			if k == tc.inputs {
				if got, want := q.Output(in), p.Output(in); got != want {
					t.Fatalf("Simplify(%q) = %q disagrees on %v: got %#x want %#x (stats %+v)",
						tc.expr, q, in, got, want, st)
				}
				return
			}
			for _, v := range vals {
				in[k] = v
				sweep(k + 1)
			}
		}
		if tc.inputs <= 2 {
			sweep(0)
		} else {
			for _, v := range vals {
				for i := range in {
					in[i] = v
				}
				if got, want := q.Output(in), p.Output(in); got != want {
					t.Fatalf("Simplify(%q) disagrees on %v: got %#x want %#x", tc.expr, in, got, want)
				}
			}
		}
	}
}

// Saturation must respect its budget caps and stay deterministic when
// capped: a tiny node budget must degrade, not break.
func TestBudgetRespected(t *testing.T) {
	p := parse(t, "addq(addq(addq(addq(x, y), z), x), addq(y, z))", 3)
	tight := Budget{MaxNodes: 64, MaxIters: 2}
	h1, st1 := EClassHash(p, tight)
	h2, st2 := EClassHash(p, tight)
	if h1 != h2 {
		t.Fatalf("capped hash not deterministic: %016x vs %016x", h1, h2)
	}
	if st1 != st2 {
		t.Fatalf("capped stats not deterministic: %+v vs %+v", st1, st2)
	}
	if st1.Nodes > 64 {
		t.Errorf("node budget exceeded: %d e-nodes > 64", st1.Nodes)
	}
	if st1.Iters > 2 {
		t.Errorf("iteration budget exceeded: %d > 2", st1.Iters)
	}
	q, _ := Simplify(p, tight)
	for _, v := range []uint64{0, 1, ^uint64(0), 1 << 63} {
		in := []uint64{v, v ^ 3, ^v}
		if q.Output(in) != p.Output(in) {
			t.Fatalf("capped extraction disagrees on %v", in)
		}
	}
}

// No rule may ever prove two distinct constants equal.
func TestNoConstConflicts(t *testing.T) {
	exprs := []string{
		"addq(addq(x, 1), 2)", "divq(x, subq(y, y))", "shlq(x, 64)",
		"orl(x, 0xffffffff)", "mulq(mulq(x, 2), 4)",
	}
	for _, e := range exprs {
		inputs := 1
		if len(e) > 0 && (e == "divq(x, subq(y, y))") {
			inputs = 2
		}
		_, st := EClassHash(parse(t, e, inputs), Budget{})
		if st.ConstConflicts != 0 {
			t.Errorf("%q: %d constant conflicts (unsound rule?)", e, st.ConstConflicts)
		}
	}
}

// Dedup: second equivalent seed is a dup, plateau revisit at equal
// cost is a hit, nil receiver is inert.
func TestDedup(t *testing.T) {
	var nilD *Dedup
	p := parse(t, "addq(x, 3)", 1)
	if nilD.Visited(p, 1) || nilD.Seed(p) {
		t.Fatal("nil Dedup must be inert")
	}
	d := NewDedup(Budget{})
	if d.Seed(p) {
		t.Fatal("first seed reported as dup")
	}
	q := parse(t, "addq(addq(x, 1), 2)", 1)
	if !d.Seed(q) {
		t.Fatal("rewrite-equivalent seed not reported as dup")
	}
	st := d.Stats()
	if st.Seeds != 2 || st.SeedDups != 1 {
		t.Fatalf("seed stats = %+v, want Seeds=2 SeedDups=1", st)
	}

	// Visited samples 1-in-16: drive it past the sampling boundary.
	d2 := NewDedup(Budget{})
	hit := false
	for i := 0; i < 64 && !hit; i++ {
		// Alternate equivalent respellings at the same cost: once both
		// have been sampled, the later one must report a hit.
		hit = d2.Visited(p, 5) || d2.Visited(q, 5)
	}
	if !hit {
		t.Fatalf("plateau revisit never reported: %+v", d2.Stats())
	}
}
