// Package eqsat is a small equality-saturation engine over the
// dataflow programs of internal/prog: a hashconsed e-graph with
// union-find e-classes and congruence closure, a budgeted saturation
// driver that reuses the exported algebraic rule table from
// internal/prog/analysis (plus associativity expansion rules of its
// own), and a cost-minimal, deterministic extraction.
//
// The package serves three consumers (DESIGN.md §12):
//
//   - EClassHash keys *rewrite equivalence*: programs that the rule
//     set can prove equal hash identically, strictly coarser than the
//     canonicalizer's syntactic hash (which cannot cross, e.g., an
//     associativity respelling);
//   - Dedup lets the restart and search layers skip rewrite-equivalent
//     restart seeds and plateau states (stochsyn.Options.EqSat);
//   - the synthd cache uses EClassHash as a second-level key so
//     rewrite-equivalent submissions hit fleet-wide.
//
// Everything is deterministic: classes are stored in a slice and
// visited in id order, node lists are kept sorted, worklists are
// sorted before draining, and the only map (the hashcons) is used for
// lookup, never iterated. Saturation is budgeted by an e-node cap and
// an iteration cap; when the cap bites, the engine degrades to "fewer
// equalities discovered", never to nondeterminism or unsoundness.
package eqsat

import (
	"sort"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis/absint"
)

// classID identifies an e-class. It aliases the rule table's Ref type
// (int32) so e-classes can be fed to analysis.Rule matchers directly.
type classID = int32

// enode is one operator application over e-classes: op applied to the
// classes a and b (b unused below arity 2, always zero there so enode
// stays a well-behaved comparable map key). For OpInput val is the
// input index; for OpConst it is the constant value.
type enode struct {
	op   prog.Op
	a, b classID
	val  uint64
}

// parentEdge records that enode n (a member of class c) uses the class
// the edge is stored on as an argument; congruence repair
// re-canonicalizes these after merges.
type parentEdge struct {
	n enode
	c classID
}

// eclass is the data of one representative class: its member enodes
// (kept sorted between saturation passes), the parent edges of classes
// that use it, the class's constant value once one is known, and the
// class's abstract value (the e-class analysis).
//
// fact is maintained as the MEET over every member's transfer result:
// all members of a class compute the same value on every input, and
// each member's abstract value contains that value, so the
// intersection still does — merging classes can only tighten facts,
// never lose soundness. An Empty fact is therefore a contradiction:
// no value can inhabit the class, which (for classes built from real
// programs) can only mean an unsound rule or transfer function. Such
// classes are counted and cut before extraction.
type eclass struct {
	nodes    []enode
	parents  []parentEdge
	cval     uint64
	hasConst bool
	fact     absint.Value
}

// EGraph is a hashconsed e-graph. The zero value is not usable; call
// New.
type EGraph struct {
	budget Budget
	// uf is the union-find forest over class ids; the representative
	// of a merged set is always its minimum id, so determinism never
	// depends on merge order.
	uf []classID
	// classes is indexed by class id; absorbed (non-representative)
	// ids hold nil. Iterating this slice in index order is the
	// deterministic replacement for iterating a map.
	classes []*eclass
	// memo is the hashcons: canonical enode → class id (possibly
	// stale; resolve through find). Lookup-only — never iterated.
	memo map[enode]classID
	// worklist holds classes whose parents need congruence repair.
	worklist []classID
	// capped records that Add refused an enode on the node budget;
	// the graph is still sound, just less saturated.
	capped    bool
	saturated bool
	stats     Stats
}

// New returns an empty e-graph operating under b (normalized; zero
// fields get defaults).
func New(b Budget) *EGraph {
	return &EGraph{
		budget: b.normalized(),
		memo:   make(map[enode]classID),
	}
}

// find returns the representative of c, compressing paths as it goes.
func (g *EGraph) find(c classID) classID {
	for g.uf[c] != c {
		g.uf[c] = g.uf[g.uf[c]]
		c = g.uf[c]
	}
	return c
}

// canonicalize rewrites n's argument classes to their representatives
// and sorts the arguments of commutative operators by class id.
func (g *EGraph) canonicalize(n enode) enode {
	if !n.op.IsInstruction() {
		return n
	}
	n.a = g.find(n.a)
	if n.op.Arity() == 2 {
		n.b = g.find(n.b)
		if prog.Commutative(n.op) && n.a > n.b {
			n.a, n.b = n.b, n.a
		}
	}
	return n
}

// Add inserts n (hashconsed: an existing equal enode returns its
// class). It reports false — without modifying the graph — when the
// node budget is exhausted; saturation rules treat that as "rule does
// not fire", keeping budgeted runs deterministic and sound.
func (g *EGraph) Add(n enode) (classID, bool) {
	n = g.canonicalize(n)
	if id, ok := g.memo[n]; ok {
		return g.find(id), true
	}
	if len(g.classes) >= g.budget.MaxNodes {
		g.capped = true
		return -1, false
	}
	id := classID(len(g.classes))
	cls := &eclass{nodes: []enode{n}, fact: g.nodeFact(n)}
	if n.op == prog.OpConst {
		cls.cval, cls.hasConst = n.val, true
	}
	g.classes = append(g.classes, cls)
	g.uf = append(g.uf, id)
	g.memo[n] = id
	if n.op.IsInstruction() {
		g.classes[n.a].parents = append(g.classes[n.a].parents, parentEdge{n: n, c: id})
		if n.op.Arity() == 2 && n.b != n.a {
			g.classes[n.b].parents = append(g.classes[n.b].parents, parentEdge{n: n, c: id})
		}
	}
	return id, true
}

// union merges the classes of x and y, keeping the smaller id as
// representative, and queues the merged class for congruence repair.
// It reports whether a merge actually happened.
func (g *EGraph) union(x, y classID) bool {
	rx, ry := g.find(x), g.find(y)
	if rx == ry {
		return false
	}
	if rx > ry {
		rx, ry = ry, rx
	}
	g.uf[ry] = rx
	cx, cy := g.classes[rx], g.classes[ry]
	cx.nodes = append(cx.nodes, cy.nodes...)
	cx.parents = append(cx.parents, cy.parents...)
	if cy.hasConst {
		if !cx.hasConst {
			cx.cval, cx.hasConst = cy.cval, true
		} else if cx.cval != cy.cval {
			// Two distinct constants proved equal would mean an
			// unsound rule; record it (extraction's Eval-equality
			// check is the safety net) rather than panicking in
			// production paths.
			g.stats.ConstConflicts++
		}
	}
	// Members of a merged class are provably equal, so the class value
	// lies in both facts: meet them. An empty meet is the abstract
	// analogue of a constant conflict — count it, never panic.
	if m := cx.fact.Meet(cy.fact); m.Empty() && !cx.fact.Empty() && !cy.fact.Empty() {
		g.stats.FactConflicts++
		cx.fact = m
	} else {
		cx.fact = m
	}
	g.classes[ry] = nil
	g.worklist = append(g.worklist, rx)
	g.stats.Merges++
	return true
}

// rebuild restores the congruence invariant after a batch of unions:
// parents of merged classes are re-canonicalized through the hashcons,
// and colliding parents are themselves unioned, to a fixpoint. The
// worklist is sorted and deduplicated before each drain so repair
// order is a function of graph content only.
func (g *EGraph) rebuild() {
	for len(g.worklist) > 0 {
		todo := g.worklist
		g.worklist = nil
		for i := range todo {
			todo[i] = g.find(todo[i])
		}
		sort.Slice(todo, func(i, j int) bool { return todo[i] < todo[j] })
		prev := classID(-1)
		for _, c := range todo {
			if c == prev {
				continue
			}
			prev = c
			g.repair(c)
		}
	}
	g.normalize()
	g.refineFacts()
}

// repair re-canonicalizes every parent of class c. Parents whose
// canonical form now collides in the hashcons are congruent — their
// classes are unioned (which may grow the worklist).
func (g *EGraph) repair(c classID) {
	rep := g.find(c)
	cls := g.classes[rep]
	if cls == nil {
		return
	}
	parents := cls.parents
	cls.parents = nil
	fresh := make([]parentEdge, 0, len(parents))
	for _, pe := range parents {
		delete(g.memo, pe.n)
		pn := g.canonicalize(pe.n)
		pc := g.find(pe.c)
		if existing, ok := g.memo[pn]; ok {
			g.union(pc, existing)
			pc = g.find(pc)
		}
		g.memo[pn] = pc
		fresh = append(fresh, parentEdge{n: pn, c: pc})
	}
	// The repairs above may have merged rep itself into a smaller
	// class; reattach the rebuilt parent list wherever it lives now.
	target := g.classes[g.find(rep)]
	target.parents = append(target.parents, fresh...)
}

// normalize re-canonicalizes, sorts, and dedupes every class's node
// list so that rule matching and extraction iterate identical
// sequences regardless of the union history that produced the class.
func (g *EGraph) normalize() {
	for id := range g.classes {
		cls := g.classes[id]
		if cls == nil || g.find(classID(id)) != classID(id) {
			continue
		}
		for i, n := range cls.nodes {
			cls.nodes[i] = g.canonicalize(n)
		}
		sort.Slice(cls.nodes, func(i, j int) bool { return lessNode(cls.nodes[i], cls.nodes[j]) })
		w := 0
		for i, n := range cls.nodes {
			if i == 0 || n != cls.nodes[i-1] {
				cls.nodes[w] = n
				w++
			}
		}
		cls.nodes = cls.nodes[:w]
	}
}

func lessNode(x, y enode) bool {
	if x.op != y.op {
		return x.op < y.op
	}
	if x.a != y.a {
		return x.a < y.a
	}
	if x.b != y.b {
		return x.b < y.b
	}
	return x.val < y.val
}

// nodeFact computes one enode's abstract value from its argument
// classes' facts: exact for constants, Top for inputs (e-graph facts
// must hold for every input vector — the rules consume them), and the
// absint transfer function for instructions.
func (g *EGraph) nodeFact(n enode) absint.Value {
	switch n.op {
	case prog.OpConst:
		return absint.Exact(n.val)
	case prog.OpInput:
		return absint.Top()
	}
	a := g.classes[g.find(n.a)].fact
	b := absint.Top()
	if n.op.Arity() == 2 {
		b = g.classes[g.find(n.b)].fact
	}
	return absint.Transfer(n.op, a, b)
}

// refineFacts re-meets every class's fact with its members' transfer
// results until nothing changes — the e-class analysis fixpoint run
// after congruence repair, where merges may have tightened argument
// facts. Facts only descend in the lattice, so the loop terminates;
// the pass cap is a belt-and-suspenders bound against slow interval
// narrowing (any sound intermediate value is a valid stopping point).
func (g *EGraph) refineFacts() {
	for pass := 0; pass < 8; pass++ {
		changed := false
		for id := range g.classes {
			cls := g.classes[id]
			if cls == nil || g.find(classID(id)) != classID(id) {
				continue
			}
			for _, n := range cls.nodes {
				m := cls.fact.Meet(g.nodeFact(n))
				if m != cls.fact {
					if m.Empty() && !cls.fact.Empty() {
						g.stats.FactConflicts++
					}
					cls.fact = m
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// factConst merges c with the constant class its fact pins down: the
// analysis can decide a value from partial knowledge of the member
// arguments (e.g. ranges deciding a comparison through an unknown
// operand), which the all-constant-arguments folder can never reach.
func (g *EGraph) factConst(c classID) bool {
	cls := g.classes[g.find(c)]
	if cls.hasConst {
		return false
	}
	v, ok := cls.fact.Exact()
	if !ok {
		return false
	}
	id, added := g.Add(enode{op: prog.OpConst, val: v})
	if !added {
		return false
	}
	g.stats.FactConsts++
	return g.union(c, id)
}

// classConst resolves class c to a constant value when one is known.
func (g *EGraph) classConst(c classID) (uint64, bool) {
	cls := g.classes[g.find(c)]
	return cls.cval, cls.hasConst
}

// AddProgram inserts every node of p, returning the class of p's root.
// It reports false only when the node budget cannot even hold the
// program itself (callers should then fall back to the program as-is).
func (g *EGraph) AddProgram(p *prog.Program) (classID, bool) {
	cls := make([]classID, len(p.Nodes))
	for _, i := range p.TopoOrder() {
		nd := &p.Nodes[i]
		var n enode
		switch {
		case nd.Op == prog.OpInput:
			n = enode{op: prog.OpInput, val: nd.Val}
		case nd.Op == prog.OpConst:
			n = enode{op: prog.OpConst, val: nd.Val}
		default:
			n = enode{op: nd.Op, a: cls[nd.Args[0]]}
			if nd.Op.Arity() == 2 {
				n.b = cls[nd.Args[1]]
			}
		}
		id, ok := g.Add(n)
		if !ok {
			return -1, false
		}
		cls[i] = id
	}
	g.rebuild()
	return g.find(cls[p.Root]), true
}

// Stats returns the graph's counters plus the current live class and
// e-node totals.
func (g *EGraph) Stats() Stats {
	st := g.stats
	for id, cls := range g.classes {
		if cls == nil || g.find(classID(id)) != classID(id) {
			continue
		}
		st.Classes++
		st.Nodes += len(cls.nodes)
	}
	st.Saturated = g.saturated && !g.capped
	return st
}

// Stats are the observable counters of one e-graph's lifetime. The
// server aggregates them into the stochsyn_eqsat_* metric series.
type Stats struct {
	// Saturations counts Saturate calls (one per EClassHash).
	Saturations int
	// Iters counts saturation passes actually run.
	Iters int
	// Merges counts e-class unions (stochsyn_eqsat_eclass_merges_total).
	Merges int
	// Extractions counts cost-minimal extractions performed.
	Extractions int
	// Fallbacks counts extractions that failed validation or the
	// Eval-equality check and fell back to the input program.
	Fallbacks int
	// Nodes and Classes are the live totals at Stats() time.
	Nodes   int
	Classes int
	// ConstConflicts counts two distinct constants proved equal — an
	// unsound rule; always zero unless a rule is broken.
	ConstConflicts int
	// FactConsts counts classes proved constant by the e-class
	// analysis alone (fact narrowed to a singleton with non-constant
	// member arguments — out of the constant folder's reach).
	FactConsts int
	// FactConflicts counts class merges or refinements whose fact meet
	// came out empty — the abstract analogue of ConstConflicts; always
	// zero unless a rule or transfer function is unsound.
	FactConflicts int
	// EmptyClasses counts classes cut before extraction because their
	// fact was empty (uninhabitable); always zero when FactConflicts
	// is.
	EmptyClasses int
	// Saturated reports that saturation reached a fixpoint without
	// the node budget refusing any addition.
	Saturated bool
}

// Accumulate adds o's counters into st (Saturated is ANDed: a batch is
// saturated only if every member was).
func (st *Stats) Accumulate(o Stats) {
	if st.Saturations == 0 {
		st.Saturated = o.Saturated
	} else {
		st.Saturated = st.Saturated && o.Saturated
	}
	st.Saturations += o.Saturations
	st.Iters += o.Iters
	st.Merges += o.Merges
	st.Extractions += o.Extractions
	st.Fallbacks += o.Fallbacks
	st.Nodes += o.Nodes
	st.Classes += o.Classes
	st.ConstConflicts += o.ConstConflicts
	st.FactConsts += o.FactConsts
	st.FactConflicts += o.FactConflicts
	st.EmptyClasses += o.EmptyClasses
}
