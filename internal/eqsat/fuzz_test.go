package eqsat

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/mutate"
	"stochsyn/internal/prog"
)

// randomProgram builds a program by walking the mutator from the zero
// program — the same move set the search uses, so the fuzzed
// distribution matches what Dedup hashes in production.
func randomProgram(seed uint64, numInputs, steps int) *prog.Program {
	return mutate.RandomProgram(seed, numInputs, steps)
}

// FuzzEqSat is the differential gate for the tentpole invariant: for
// ANY program, saturation + extraction must produce a Validate-clean,
// Eval-equal program, deterministically; and once saturation reaches
// an uncapped fixpoint, Simplify must be idempotent (simplifying the
// simplification changes nothing). Wired into `make ci` via the fuzz
// gate's -run mode over this seed corpus.
func FuzzEqSat(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(4))
	f.Add(uint64(2), uint8(2), uint8(8))
	f.Add(uint64(3), uint8(3), uint8(12))
	f.Add(uint64(0xdeadbeef), uint8(4), uint8(16))
	f.Add(uint64(0x5eed), uint8(8), uint8(24))
	f.Add(uint64(42), uint8(2), uint8(32))
	f.Fuzz(func(t *testing.T, seed uint64, rawInputs, rawSteps uint8) {
		numInputs := int(rawInputs)%prog.MaxInputs + 1
		steps := int(rawSteps) % 33
		p := randomProgram(seed, numInputs, steps)
		if err := p.Validate(); err != nil {
			t.Fatalf("mutator produced invalid program: %v", err)
		}

		budget := Budget{MaxNodes: 512, MaxIters: 8}
		q, st := Simplify(p, budget)
		if err := q.Validate(); err != nil {
			t.Fatalf("extraction invalid: %v\n  input: %s\n  output: %s", err, p, q)
		}

		// Eval-equality on a battery derived from the fuzz seed (the
		// fixed battery inside Simplify already ran; this one varies).
		rng := rand.New(rand.NewPCG(seed^0xabcdef, 0x1234567))
		in := make([]uint64, numInputs)
		for trial := 0; trial < 32; trial++ {
			for i := range in {
				in[i] = rng.Uint64()
			}
			if got, want := q.Output(in), p.Output(in); got != want {
				t.Fatalf("extraction disagrees on %v: got %#x want %#x\n  input: %s\n  output: %s",
					in, got, want, p, q)
			}
		}

		// Determinism: same input, same budget → byte-identical result
		// and stats.
		q2, st2 := Simplify(p, budget)
		if !q.Equal(q2) {
			t.Fatalf("nondeterministic extraction: %s vs %s", q, q2)
		}
		if st != st2 {
			t.Fatalf("nondeterministic stats: %+v vs %+v", st, st2)
		}

		// Unsoundness canary: no rule may prove two constants equal.
		if st.ConstConflicts != 0 {
			t.Fatalf("constant conflict during saturation of %s", p)
		}
		// Abstract analogue: no class's fact meet may come out empty,
		// and no inhabited class may be cut before extraction.
		if st.FactConflicts != 0 {
			t.Fatalf("fact conflict during saturation of %s", p)
		}
		if st.EmptyClasses != 0 {
			t.Fatalf("empty-fact class cut during extraction of %s", p)
		}

		// Idempotence: when saturation reached an uncapped fixpoint,
		// the extraction is already minimal over everything the rules
		// can derive, so simplifying it again is the identity. (Capped
		// runs are exempt: a second run starting from the smaller
		// program may legitimately saturate further.)
		if st.Saturated {
			qq, st3 := Simplify(q, budget)
			if st3.Saturated && !qq.Equal(q) {
				t.Fatalf("Simplify not idempotent:\n  input:  %s\n  once:   %s\n  twice:  %s", p, q, qq)
			}
		}

		// EClassHash must agree between p and its own simplification —
		// hashing is keyed on rewrite equivalence, and q IS p's
		// simplified form — again only at uncapped fixpoints.
		if st.Saturated {
			h1, _ := EClassHash(p, budget)
			h2, st4 := EClassHash(q, budget)
			if st4.Saturated && h1 != h2 {
				t.Fatalf("EClassHash(p) = %016x != EClassHash(Simplify(p)) = %016x\n  p: %s\n  q: %s",
					h1, h2, p, q)
			}
		}
	})
}
