package eqsat

import (
	"testing"
)

// The e-class analysis must prove constants the folder cannot reach:
// classes with non-constant members whose abstract fact (known-bits ⊓
// interval, met over all members) narrows to a singleton.
func TestFactProvedConstants(t *testing.T) {
	cases := []struct {
		expr   string
		inputs int
		want   string
	}{
		// shlq(x, 3) has its low three bits provably zero, so the mask
		// to 7 is provably 0 — no syntactic rule covers a disjoint
		// mask, only the known-bits fact does.
		{"andq(shlq(x, 3), 7)", 1, "0"},
		// popcntq is interval-bounded to [0, 64], so the comparison is
		// range-decided to 1 for every x.
		{"ultq(popcntq(x), 65)", 1, "1"},
		// orq(x, 1) has its low bit provably one: and with 1 is 1.
		{"andq(orq(x, 1), 1)", 1, "1"},
	}
	for _, tc := range cases {
		p := parse(t, tc.expr, tc.inputs)
		q, st := Simplify(p, Budget{})
		if got := q.String(); got != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q (stats %+v)", tc.expr, got, tc.want, st)
		}
		if st.FactConsts == 0 {
			t.Errorf("%q: expected the e-class analysis to prove the constant (FactConsts = 0, stats %+v)", tc.expr, st)
		}
		if st.FactConflicts != 0 || st.EmptyClasses != 0 {
			t.Errorf("%q: unsoundness canaries tripped: %+v", tc.expr, st)
		}
	}
}

// Fact-conditioned rules must also fire through the e-graph's Subject
// adapter, where the fact comes from the class rather than a program
// node: a redundant mask collapses to its operand even though the
// operand is not constant.
func TestFactConditionedRulesInEGraph(t *testing.T) {
	cases := []struct {
		expr   string
		inputs int
		want   string
	}{
		// popcntq(x) ≤ 64 < 128, so the mask to 127 is redundant.
		{"andq(popcntq(x), 127)", 1, "popcntq(x)"},
		// The count mask covers the hardware's own 6-bit mask.
		{"shlq(x, andq(y, 63))", 2, "shlq(x, y)"},
	}
	for _, tc := range cases {
		p := parse(t, tc.expr, tc.inputs)
		q, st := Simplify(p, Budget{})
		if got := q.String(); got != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q (stats %+v)", tc.expr, got, tc.want, st)
		}
		if st.FactConflicts != 0 || st.EmptyClasses != 0 {
			t.Errorf("%q: unsoundness canaries tripped: %+v", tc.expr, st)
		}
	}
}
