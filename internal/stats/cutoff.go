package stats

import (
	"math"
	"sort"
)

// OptimalCutoff estimates the distribution-optimal fixed restart
// cutoff t* of Section 5.1 of the paper (after Luby, Sinclair, and
// Zuckerman): for a restart-every-t strategy over a run-time
// distribution with CDF F, the expected total time is
//
//	E[T_t] = ( E[min(T, t)] ) / F(t)
//	       = ( sum_{x_i <= t} x_i + (n - k) * t ) / k          (empirical)
//
// where k is the number of samples at or below t. The optimum over t
// is attained at one of the sample points, so the estimator evaluates
// the formula at each sorted sample and returns the minimizing cutoff
// and its expected total time.
//
// To avoid the selection bias of minimizing over very noisy
// small-sample candidates (which would spuriously suggest tiny cutoffs
// even for memoryless distributions, where restarts cannot help),
// cutoffs with fewer than max(5, n/50) samples at or below them are
// not considered.
//
// times must be the observed completion times of *finished* runs; the
// estimate is only meaningful when the sample is not heavily censored.
// NaN/NaN is returned for an empty sample.
func OptimalCutoff(times []float64) (cutoff, expected float64) {
	if len(times) == 0 {
		return math.NaN(), math.NaN()
	}
	s := append([]float64(nil), times...)
	sort.Float64s(s)
	n := float64(len(s))
	minK := len(s) / 50
	if minK < 5 {
		minK = 5
	}
	if minK > len(s) {
		minK = len(s)
	}
	bestT, bestE := s[len(s)-1], math.Inf(1)
	prefix := 0.0
	for i, t := range s {
		prefix += t
		if i+1 < minK {
			continue
		}
		k := float64(i + 1)
		e := (prefix + (n-k)*t) / k
		if e < bestE {
			bestE, bestT = e, t
		}
	}
	return bestT, bestE
}

// RestartExpectation evaluates the empirical expected total time of a
// restart-every-cutoff strategy over observed completion times,
// returning +Inf when no sample finishes within the cutoff.
func RestartExpectation(times []float64, cutoff float64) float64 {
	if len(times) == 0 {
		return math.NaN()
	}
	var within, sum float64
	for _, t := range times {
		if t <= cutoff {
			within++
			sum += t
		} else {
			sum += cutoff
		}
	}
	if within == 0 {
		return math.Inf(1)
	}
	return sum / within
}
