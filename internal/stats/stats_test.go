package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("empty/short inputs should yield NaN")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %g, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Q0 = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Q1 = %g, want 5", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("Q.25 = %g, want 2", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %g, want 5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := QuantileSorted(xs, 0.5); got != 2.5 {
		t.Errorf("QuantileSorted = %g, want 2.5", got)
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		xs := make([]float64, 1+rng.IntN(50))
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean = %g, want 10", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean of empty should be NaN")
	}
}

func TestTailRatio(t *testing.T) {
	// Symmetric data: ratio ~1. Heavy tail: ratio >> 1.
	sym := []float64{1, 2, 3, 4, 5}
	if got := TailRatio(sym); !almostEqual(got, 1, 1e-9) {
		t.Errorf("symmetric TailRatio = %g, want 1", got)
	}
	heavy := []float64{1, 1, 1, 1, 10000}
	if got := TailRatio(heavy); got < 100 {
		t.Errorf("heavy TailRatio = %g, want >> 1", got)
	}
}

func TestPenalizedMean(t *testing.T) {
	// All trials succeed: plain mean.
	if got := PenalizedMean([]float64{10, 20}, 2, 100); got != 15 {
		t.Errorf("all-success = %g, want 15", got)
	}
	// Half succeed: penalty (1/0.5 - 1)*C = C.
	if got := PenalizedMean([]float64{10, 20}, 4, 100); got != 115 {
		t.Errorf("half-success = %g, want 15 + 100", got)
	}
	// None succeed.
	if !math.IsInf(PenalizedMean(nil, 10, 100), 1) {
		t.Error("no-success should be +Inf")
	}
	if !math.IsNaN(PenalizedMean(nil, 0, 100)) {
		t.Error("zero trials should be NaN")
	}
}

func TestPropertyPenalizedMeanAtLeastSampleMean(t *testing.T) {
	f := func(seed uint64, extraRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + rng.IntN(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		trials := n + int(extraRaw)%10
		pm := PenalizedMean(xs, trials, 1000)
		return pm >= Mean(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 100}, 0, 10, 5)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Errorf("histogram lost values: total %d", total)
	}
	if counts[0] != 3 { // 0, 1, and clamped -5
		t.Errorf("first bin = %d, want 3", counts[0])
	}
	if counts[4] != 2 { // 9.9 and clamped 100
		t.Errorf("last bin = %d, want 2", counts[4])
	}
}

func TestOptimalCutoffGeometric(t *testing.T) {
	// For a memoryless (geometric/exponential) distribution restarts
	// cannot help: the optimal cutoff is effectively "never restart"
	// (the largest sample) and the expected time stays near the mean.
	rng := rand.New(rand.NewPCG(11, 12))
	var xs []float64
	for i := 0; i < 4000; i++ {
		xs = append(xs, -math.Log(1-rng.Float64())*1000)
	}
	cutoff, expected := OptimalCutoff(xs)
	if expected > 1.2*Mean(xs) || expected < 0.8*Mean(xs) {
		t.Errorf("geometric: expected %g vs mean %g", expected, Mean(xs))
	}
	_ = cutoff
}

func TestOptimalCutoffHeavyTail(t *testing.T) {
	// A bimodal mixture (10% fast at ~10, 90% slow at ~100000) has an
	// optimal cutoff just above the fast mode, with expected time
	// around cutoff/p_fast << mean.
	rng := rand.New(rand.NewPCG(13, 14))
	var xs []float64
	for i := 0; i < 5000; i++ {
		if rng.IntN(10) == 0 {
			xs = append(xs, 5+10*rng.Float64())
		} else {
			xs = append(xs, 90000+20000*rng.Float64())
		}
	}
	cutoff, expected := OptimalCutoff(xs)
	if cutoff > 100 {
		t.Errorf("cutoff %g should sit near the fast mode", cutoff)
	}
	if expected > Mean(xs)/10 {
		t.Errorf("restarting should win big: expected %g vs mean %g", expected, Mean(xs))
	}
	// Cross-check against the direct evaluation.
	if e := RestartExpectation(xs, cutoff); math.Abs(e-expected) > 1e-9 {
		t.Errorf("RestartExpectation(cutoff) = %g, OptimalCutoff said %g", e, expected)
	}
}

func TestOptimalCutoffEmpty(t *testing.T) {
	c, e := OptimalCutoff(nil)
	if !math.IsNaN(c) || !math.IsNaN(e) {
		t.Error("empty input should yield NaN")
	}
	if !math.IsNaN(RestartExpectation(nil, 5)) {
		t.Error("empty RestartExpectation should be NaN")
	}
}

func TestRestartExpectationNoFinishers(t *testing.T) {
	if !math.IsInf(RestartExpectation([]float64{10, 20}, 5), 1) {
		t.Error("cutoff below all samples should be +Inf")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 50 + 10*rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, 7)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Errorf("CI [%g, %g] does not bracket mean %g", lo, hi, m)
	}
	// The CI half-width should be near 1.96*sigma/sqrt(n) ~ 1.
	if hi-lo < 0.5 || hi-lo > 4 {
		t.Errorf("CI width %g implausible", hi-lo)
	}
	// Deterministic.
	lo2, hi2 := BootstrapCI(xs, 0.95, 500, 7)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic given seed")
	}
	if l, h := BootstrapCI(nil, 0.95, 100, 1); !math.IsNaN(l) || !math.IsNaN(h) {
		t.Error("empty input should yield NaN bounds")
	}
}
