package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a continuous(ized) distribution of synthesis times. The
// paper analyzes three families: geometric (single dominant plateau),
// gamma (a path of comparable plateaus), and log-normal (a mixture of
// paths whose means vary over orders of magnitude).
type Dist interface {
	// Name identifies the family.
	Name() string
	// CDF returns P[X <= x].
	CDF(x float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// String renders the family with its parameters.
	String() string
}

// Geometric models the time to leave a single dominant plateau with
// per-iteration exit probability P. For the iteration counts involved
// it is treated continuously (support x >= 0).
type Geometric struct{ P float64 }

// Name implements Dist.
func (Geometric) Name() string { return "geometric" }

// CDF implements Dist: P[X <= x] = 1 - (1-p)^x.
func (g Geometric) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(x*math.Log1p(-g.P))
}

// Mean implements Dist.
func (g Geometric) Mean() float64 { return 1 / g.P }

func (g Geometric) String() string { return fmt.Sprintf("geometric(p=%.3g)", g.P) }

// FitGeometric fits by MLE: p = 1/mean.
func FitGeometric(xs []float64) Geometric {
	m := Mean(xs)
	if m < 1 {
		m = 1
	}
	return Geometric{P: 1 / m}
}

// LogNormal is the log-normal distribution with location Mu and scale
// Sigma of the underlying normal.
type LogNormal struct{ Mu, Sigma float64 }

// Name implements Dist.
func (LogNormal) Name() string { return "lognormal" }

// CDF implements Dist.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(mu=%.3g, sigma=%.3g)", l.Mu, l.Sigma)
}

// FitLogNormal fits by MLE on the logs of the (positive) samples.
func FitLogNormal(xs []float64) LogNormal {
	logs := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	sigma := StdDev(logs)
	if math.IsNaN(sigma) || sigma == 0 {
		sigma = 1e-9
	}
	return LogNormal{Mu: Mean(logs), Sigma: sigma}
}

// Gamma is the gamma distribution with shape K and scale Theta; a sum
// of comparable geometric plateau times is approximately gamma.
type Gamma struct{ K, Theta float64 }

// Name implements Dist.
func (Gamma) Name() string { return "gamma" }

// CDF implements Dist: the regularized lower incomplete gamma
// P(k, x/theta).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGamma(g.K, x/g.Theta)
}

// Mean implements Dist.
func (g Gamma) Mean() float64 { return g.K * g.Theta }

func (g Gamma) String() string { return fmt.Sprintf("gamma(k=%.3g, theta=%.3g)", g.K, g.Theta) }

// FitGamma fits by the method of moments: k = mean^2/var,
// theta = var/mean. (Moment fitting is standard for gamma when a
// closed-form MLE is unavailable; it suffices for the family census of
// Figure 6.)
func FitGamma(xs []float64) Gamma {
	m := Mean(xs)
	v := Variance(xs)
	if !(v > 0) || !(m > 0) {
		return Gamma{K: 1, Theta: math.Max(m, 1)}
	}
	return Gamma{K: m * m / v, Theta: v / m}
}

// regIncGamma computes the regularized lower incomplete gamma function
// P(a, x) using the series expansion for x < a+1 and the continued
// fraction for x >= a+1 (Numerical Recipes gammp).
func regIncGamma(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-12 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a, x); P = 1 - Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-12 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// KSDistance returns the Kolmogorov-Smirnov statistic between the
// empirical distribution of xs and d: the maximum absolute difference
// between the empirical CDF and d's CDF.
func KSDistance(xs []float64, d Dist) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	maxD := 0.0
	for i, x := range s {
		f := d.CDF(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(f - float64(i+1)/n)
		if lo > maxD {
			maxD = lo
		}
		if hi > maxD {
			maxD = hi
		}
	}
	return maxD
}

// Fit is the result of fitting one family to a sample.
type Fit struct {
	Dist Dist
	KS   float64
}

// FitAll fits the geometric, gamma, and log-normal families to xs and
// returns the fits sorted by ascending KS distance; the first entry is
// the best fit. This is the census run for Figure 6.
func FitAll(xs []float64) []Fit {
	fits := []Fit{
		{Dist: FitGeometric(xs)},
		{Dist: FitGamma(xs)},
		{Dist: FitLogNormal(xs)},
	}
	for i := range fits {
		fits[i].KS = KSDistance(xs, fits[i].Dist)
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].KS < fits[j].KS })
	return fits
}

// BestFit returns the family with the smallest KS distance.
func BestFit(xs []float64) Fit { return FitAll(xs)[0] }
