package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// sampleGeometric draws from a geometric distribution with success
// probability p (continuous inverse-CDF approximation).
func sampleGeometric(rng *rand.Rand, p float64) float64 {
	return math.Log(1-rng.Float64()) / math.Log1p(-p)
}

// sampleLogNormal draws from a log-normal.
func sampleLogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// sampleGamma draws from a gamma with integer shape (sum of
// exponentials).
func sampleGamma(rng *rand.Rand, k int, theta float64) float64 {
	s := 0.0
	for i := 0; i < k; i++ {
		s += -math.Log(1-rng.Float64()) * theta
	}
	return s
}

func TestGeometricBasics(t *testing.T) {
	g := Geometric{P: 0.01}
	if !almostEqual(g.Mean(), 100, 1e-9) {
		t.Errorf("Mean = %g, want 100", g.Mean())
	}
	if g.CDF(-1) != 0 {
		t.Error("CDF(-1) != 0")
	}
	if got := g.CDF(math.Inf(1)); got != 1 {
		t.Errorf("CDF(inf) = %g", got)
	}
	// CDF(mean) = 1 - (1-p)^(1/p) ~ 1 - 1/e.
	if got := g.CDF(100); !almostEqual(got, 1-math.Pow(0.99, 100), 1e-9) {
		t.Errorf("CDF(100) = %g", got)
	}
}

func TestLogNormalBasics(t *testing.T) {
	l := LogNormal{Mu: 0, Sigma: 1}
	if got := l.CDF(1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(median) = %g, want 0.5", got)
	}
	if l.CDF(0) != 0 || l.CDF(-5) != 0 {
		t.Error("CDF must be 0 for non-positive x")
	}
	if got := l.Mean(); !almostEqual(got, math.Exp(0.5), 1e-12) {
		t.Errorf("Mean = %g, want e^0.5", got)
	}
}

func TestGammaBasics(t *testing.T) {
	g := Gamma{K: 1, Theta: 10} // exponential with mean 10
	if got := g.Mean(); got != 10 {
		t.Errorf("Mean = %g, want 10", got)
	}
	// Exponential CDF check: 1 - e^(-x/theta).
	for _, x := range []float64{1, 5, 10, 50} {
		want := 1 - math.Exp(-x/10)
		if got := g.CDF(x); !almostEqual(got, want, 1e-9) {
			t.Errorf("CDF(%g) = %g, want %g", x, got, want)
		}
	}
	// Shape 3 at its mean should be near 0.58.
	g3 := Gamma{K: 3, Theta: 1}
	if got := g3.CDF(3); !almostEqual(got, 0.5768, 1e-3) {
		t.Errorf("gamma(3).CDF(3) = %g, want ~0.577", got)
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	dists := []Dist{
		Geometric{P: 0.02},
		LogNormal{Mu: 3, Sigma: 1.5},
		Gamma{K: 2.5, Theta: 40},
	}
	f := func(aRaw, bRaw uint32) bool {
		a := float64(aRaw) / 1000
		b := float64(bRaw) / 1000
		if a > b {
			a, b = b, a
		}
		for _, d := range dists {
			ca, cb := d.CDF(a), d.CDF(b)
			if ca > cb+1e-12 || ca < 0 || cb > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFitGeometricRecoversP(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, sampleGeometric(rng, 0.005))
	}
	g := FitGeometric(xs)
	if g.P < 0.004 || g.P > 0.006 {
		t.Errorf("fit p = %g, want ~0.005", g.P)
	}
}

func TestFitLogNormalRecoversParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, sampleLogNormal(rng, 5, 1.5))
	}
	l := FitLogNormal(xs)
	if !almostEqual(l.Mu, 5, 0.1) || !almostEqual(l.Sigma, 1.5, 0.1) {
		t.Errorf("fit = %v, want mu=5 sigma=1.5", l)
	}
}

func TestFitGammaRecoversParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, sampleGamma(rng, 4, 25))
	}
	g := FitGamma(xs)
	if !almostEqual(g.K, 4, 0.5) || !almostEqual(g.Theta, 25, 4) {
		t.Errorf("fit = %v, want k=4 theta=25", g)
	}
}

func TestKSDistanceSelf(t *testing.T) {
	// KS distance of a large sample against its generating
	// distribution should be small.
	rng := rand.New(rand.NewPCG(4, 4))
	var xs []float64
	for i := 0; i < 3000; i++ {
		xs = append(xs, sampleGeometric(rng, 0.01))
	}
	if d := KSDistance(xs, Geometric{P: 0.01}); d > 0.05 {
		t.Errorf("self KS = %g, want < 0.05", d)
	}
	// And large against a very different distribution.
	if d := KSDistance(xs, LogNormal{Mu: 10, Sigma: 0.1}); d < 0.5 {
		t.Errorf("mismatched KS = %g, want > 0.5", d)
	}
}

func TestBestFitIdentifiesFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	cases := []struct {
		name   string
		sample func() float64
		want   string
	}{
		{"geometric", func() float64 { return sampleGeometric(rng, 0.01) }, "geometric"},
		{"lognormal", func() float64 { return sampleLogNormal(rng, 6, 2) }, "lognormal"},
	}
	for _, tc := range cases {
		var xs []float64
		for i := 0; i < 4000; i++ {
			xs = append(xs, tc.sample())
		}
		got := BestFit(xs)
		if got.Dist.Name() != tc.want {
			t.Errorf("%s sample best fit = %s (KS %g)", tc.name, got.Dist, got.KS)
		}
	}
}

func TestFitAllSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	var xs []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, sampleLogNormal(rng, 4, 1))
	}
	fits := FitAll(xs)
	if len(fits) != 3 {
		t.Fatalf("FitAll returned %d fits", len(fits))
	}
	for i := 1; i < len(fits); i++ {
		if fits[i].KS < fits[i-1].KS {
			t.Error("FitAll not sorted by KS")
		}
	}
}

func TestRegIncGammaBoundaries(t *testing.T) {
	if got := regIncGamma(2, 0); got != 0 {
		t.Errorf("P(2, 0) = %g, want 0", got)
	}
	if got := regIncGamma(2, 1e9); !almostEqual(got, 1, 1e-9) {
		t.Errorf("P(2, huge) = %g, want 1", got)
	}
	if !math.IsNaN(regIncGamma(-1, 2)) {
		t.Error("P(-1, 2) should be NaN")
	}
}
