// Package stats provides the statistical machinery used by the
// evaluation: summary statistics, quantiles and geometric means, the
// penalized mean-time estimator of Section 7.2 of the paper, heavy-
// tail diagnostics, and the three distribution families the paper
// identifies in synthesis-time data (geometric, gamma, and log-normal)
// together with fitting and Kolmogorov-Smirnov goodness measures.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, or NaN for fewer than
// two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median, or NaN for empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It copies and sorts the
// input; NaN is returned for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is Quantile for already-sorted input, without
// copying.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeoMean returns the geometric mean of xs. All values must be
// positive; NaN is returned otherwise or for empty input.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// TailRatio returns the heavy-tail diagnostic the paper uses: the
// ratio of mean to median. For the paper's purposes a distribution is
// heavy-tailed when the mean is much greater than the median.
func TailRatio(xs []float64) float64 {
	return Mean(xs) / Median(xs)
}

// PenalizedMean implements the estimator of Section 7.2: given the
// times of successful trials out of `trials` total runs each capped at
// C iterations, it returns the mean of the successes plus the penalty
// P = (1/ps - 1) * C, where ps is the empirical success probability.
// This equals the expected time of a meta-restart strategy that resets
// after C iterations. It returns +Inf when no trial succeeded.
func PenalizedMean(successTimes []float64, trials int, c float64) float64 {
	if trials <= 0 {
		return math.NaN()
	}
	if len(successTimes) == 0 {
		return math.Inf(1)
	}
	ps := float64(len(successTimes)) / float64(trials)
	return Mean(successTimes) + (1/ps-1)*c
}

// Histogram bins xs into n equal-width bins over [min, max] and
// returns the bin counts. Values outside the range are clamped to the
// end bins. Used by the text plots.
func Histogram(xs []float64, min, max float64, n int) []int {
	counts := make([]int, n)
	if len(xs) == 0 || n == 0 || max <= min {
		return counts
	}
	w := (max - min) / float64(n)
	for _, x := range xs {
		b := int((x - min) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// BootstrapCI estimates a confidence interval for the mean of xs by
// the percentile bootstrap: resamples of xs with replacement, conf in
// (0, 1) (e.g. 0.95). Deterministic given the seed. NaN bounds are
// returned for empty input.
func BootstrapCI(xs []float64, conf float64, resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 || conf <= 0 || conf >= 1 || resamples <= 0 {
		return math.NaN(), math.NaN()
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	means := make([]float64, resamples)
	for r := range means {
		s := 0.0
		for i := 0; i < len(xs); i++ {
			s += xs[rng.IntN(len(xs))]
		}
		means[r] = s / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return QuantileSorted(means, alpha), QuantileSorted(means, 1-alpha)
}
