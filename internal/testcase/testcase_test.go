package testcase

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func xorFunc(in []uint64) uint64 { return in[0] ^ in[1] }

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := Generate(xorFunc, 2, 100, rng)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
	for i, c := range s.Cases {
		if c.Output != xorFunc(c.Inputs) {
			t.Fatalf("case %d output mismatch", i)
		}
	}
}

func TestGenerateIncludesUniformCorners(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	s := Generate(xorFunc, 2, 50, rng)
	want := map[uint64]bool{0: false, 1: false, ^uint64(0): false}
	for _, c := range s.Cases {
		if c.Inputs[0] == c.Inputs[1] {
			if _, ok := want[c.Inputs[0]]; ok {
				want[c.Inputs[0]] = true
			}
		}
	}
	for v, seen := range want {
		if !seen {
			t.Errorf("uniform corner vector %#x missing", v)
		}
	}
}

func TestGenerateDeduplicates(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	s := Generate(func(in []uint64) uint64 { return in[0] }, 1, 60, rng)
	seen := map[string]bool{}
	for _, c := range s.Cases {
		key := fmt.Sprint(c.Inputs)
		if seen[key] {
			t.Fatalf("duplicate input vector %v", c.Inputs)
		}
		seen[key] = true
	}
}

func TestGenerateSingleInputTerminates(t *testing.T) {
	// Regression: with one input the corner-case pool is smaller than
	// n/3 for large n; generation must not spin forever.
	rng := rand.New(rand.NewPCG(4, 4))
	s := Generate(func(in []uint64) uint64 { return in[0] }, 1, 100, rng)
	if s.Len() == 0 {
		t.Fatal("no cases generated")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(xorFunc, 2, 40, rand.New(rand.NewPCG(7, 8)))
	b := Generate(xorFunc, 2, 40, rand.New(rand.NewPCG(7, 8)))
	if a.Len() != b.Len() {
		t.Fatal("lengths differ across identical seeds")
	}
	for i := range a.Cases {
		if fmt.Sprint(a.Cases[i]) != fmt.Sprint(b.Cases[i]) {
			t.Fatalf("case %d differs across identical seeds", i)
		}
	}
}

func TestGenerateUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	s := GenerateUniform(xorFunc, 3, 25, rng)
	if s.Len() != 25 || s.NumInputs != 3 {
		t.Fatalf("got %d cases / %d inputs", s.Len(), s.NumInputs)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	s := &Suite{NumInputs: 2}
	if err := s.Validate(); err == nil {
		t.Error("empty suite validated")
	}
	s.Cases = append(s.Cases, Case{Inputs: []uint64{1}, Output: 0})
	if err := s.Validate(); err == nil {
		t.Error("wrong-arity case validated")
	}
	s2 := &Suite{NumInputs: -1, Cases: []Case{{}}}
	if err := s2.Validate(); err == nil {
		t.Error("negative input count validated")
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	s := Generate(xorFunc, 2, 10, rng)
	c := s.Clone()
	c.Cases[0].Inputs[0] = 0xdead
	c.Cases[0].Output = 0xbeef
	if s.Cases[0].Inputs[0] == 0xdead || s.Cases[0].Output == 0xbeef {
		t.Error("Clone aliases case storage")
	}
}

func TestPropertyGenerateRespectsArity(t *testing.T) {
	f := func(seed uint64, nRaw, sizeRaw uint8) bool {
		n := 1 + int(nRaw)%4
		size := 1 + int(sizeRaw)%120
		rng := rand.New(rand.NewPCG(seed, 11))
		s := Generate(func(in []uint64) uint64 { return in[0] }, n, size, rng)
		return s.Validate() == nil && s.Len() <= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
