// Package testcase defines the input/output test cases that specify a
// synthesis problem and the generators that produce them: important
// corner cases (0, 1, -1, ...), uniformly random bit patterns, and bit
// patterns with high and low Hamming weight, per Section 6.1 of the
// paper.
package testcase

import (
	"fmt"
	"math/rand/v2"

	"stochsyn/internal/bits"
)

// Case is one test case: an input vector and the desired output.
type Case struct {
	Inputs []uint64
	Output uint64
}

// Suite is the full specification of a synthesis problem: a fixed
// number of inputs and a list of cases. A program solves the suite
// when its output equals Output on every case.
type Suite struct {
	NumInputs int
	Cases     []Case
}

// Validate checks that every case has exactly NumInputs inputs.
func (s *Suite) Validate() error {
	if s.NumInputs < 0 {
		return fmt.Errorf("testcase: negative input count %d", s.NumInputs)
	}
	if len(s.Cases) == 0 {
		return fmt.Errorf("testcase: empty suite")
	}
	for i, c := range s.Cases {
		if len(c.Inputs) != s.NumInputs {
			return fmt.Errorf("testcase: case %d has %d inputs, want %d", i, len(c.Inputs), s.NumInputs)
		}
	}
	return nil
}

// Len returns the number of cases.
func (s *Suite) Len() int { return len(s.Cases) }

// Clone returns a deep copy of the suite.
func (s *Suite) Clone() *Suite {
	out := &Suite{NumInputs: s.NumInputs, Cases: make([]Case, len(s.Cases))}
	for i, c := range s.Cases {
		out.Cases[i] = Case{Inputs: append([]uint64(nil), c.Inputs...), Output: c.Output}
	}
	return out
}

// Func is a reference semantics for a synthesis problem, used to
// compute desired outputs when generating suites.
type Func func(inputs []uint64) uint64

// Generate builds a suite of n cases for a reference function with
// numInputs inputs. The input vectors mix three sources in roughly the
// proportions the benchmark uses: corner-case values on each input,
// uniformly random words, and words with skewed (high or low) Hamming
// weight. Generation is deterministic given the rng.
func Generate(f Func, numInputs, n int, rng *rand.Rand) *Suite {
	s := &Suite{NumInputs: numInputs}
	seen := make(map[string]bool, n)
	add := func(in []uint64) bool {
		key := fmt.Sprint(in)
		if seen[key] {
			return false
		}
		seen[key] = true
		s.Cases = append(s.Cases, Case{Inputs: in, Output: f(in)})
		return true
	}
	// fill draws vectors from gen until the suite reaches target cases
	// or the generator keeps producing duplicates (possible when the
	// value pool is small relative to the target, e.g. corner cases
	// with a single input); misses is the consecutive-duplicate bound.
	fill := func(target int, gen func(in []uint64)) {
		const maxMisses = 64
		misses := 0
		for len(s.Cases) < target && misses < maxMisses {
			in := make([]uint64, numInputs)
			gen(in)
			if add(in) {
				misses = 0
			} else {
				misses++
			}
		}
	}

	// Corner-case vectors first: all inputs drawn from the corner
	// list, starting with the uniform vectors (all zero, all one, all
	// minus-one) and then mixed assignments.
	for _, v := range []uint64{0, 1, ^uint64(0)} {
		if len(s.Cases) >= n {
			break
		}
		in := make([]uint64, numInputs)
		for i := range in {
			in[i] = v
		}
		add(in)
	}
	fill(n/3, func(in []uint64) {
		for i := range in {
			in[i] = bits.CornerCases[rng.IntN(len(bits.CornerCases))]
		}
	})

	// Skewed Hamming-weight vectors.
	fill(2*n/3, func(in []uint64) {
		for i := range in {
			if rng.IntN(2) == 0 {
				in[i] = bits.RandomLowWeight(rng)
			} else {
				in[i] = bits.RandomHighWeight(rng)
			}
		}
	})

	// Uniformly random vectors for the remainder.
	fill(n, func(in []uint64) {
		for i := range in {
			in[i] = rng.Uint64()
		}
	})
	return s
}

// GenerateUniform builds a suite of n cases whose inputs are all
// uniformly random words. Some SyGuS-style problems use purely random
// examples; this generator reproduces that shape.
func GenerateUniform(f Func, numInputs, n int, rng *rand.Rand) *Suite {
	s := &Suite{NumInputs: numInputs}
	for len(s.Cases) < n {
		in := make([]uint64, numInputs)
		for i := range in {
			in[i] = rng.Uint64()
		}
		s.Cases = append(s.Cases, Case{Inputs: in, Output: f(in)})
	}
	return s
}
