package restart

import (
	"testing"
	"time"
)

func TestParallelNaiveSolves(t *testing.T) {
	// Every search finishes at 300 iterations, so whichever workers
	// the scheduler feeds, some search must cross its finish line well
	// within budget. (Grant distribution across workers is
	// deliberately unfair — a fast worker may drain the pool before
	// the others start — so the test must not rely on a particular
	// search getting budget.)
	res := (&ParallelNaive{Workers: 4, Chunk: 100}).Run(fixedFactory(300), 100_000)
	if !res.Solved {
		t.Fatalf("parallel naive never solved: %+v", res)
	}
	if res.Winner == nil {
		t.Fatal("solved without a winner")
	}
	if res.Iterations > 100_000 {
		t.Errorf("budget exceeded: %d", res.Iterations)
	}
}

func TestParallelNaiveConsumesExactBudget(t *testing.T) {
	// Unsolvable searches with a chunk that does not divide the
	// budget: the final partial chunk must still be spent, not
	// stranded (the pool blocks hungry workers while grants are
	// outstanding instead of letting them exit for good).
	res := (&ParallelNaive{Workers: 4, Chunk: 64}).Run(fixedFactory(-1), 10_001)
	if res.Solved {
		t.Fatal("unsolvable factory solved")
	}
	if res.Iterations != 10_001 {
		t.Errorf("consumed %d of 10001: stranded budget", res.Iterations)
	}
}

func TestParallelNaiveSearchesCountsConsumers(t *testing.T) {
	// With budget for a single chunk, only one search can consume
	// budget: Searches must report actual consumers, not the
	// configured worker count.
	res := (&ParallelNaive{Workers: 8, Chunk: 4096}).Run(fixedFactory(-1), 4096)
	if res.Solved {
		t.Fatal("unsolvable factory solved")
	}
	if res.Iterations != 4096 {
		t.Errorf("consumed %d of 4096", res.Iterations)
	}
	if res.Searches != 1 {
		t.Errorf("Searches = %d, want the 1 search that actually got budget (not the 8 workers)", res.Searches)
	}
}

func TestParallelNaiveSolveWakesWaiters(t *testing.T) {
	// A solver returns the unused part of its grant and closes the
	// pool; workers blocked on an empty pool must wake up and exit
	// rather than deadlock.
	done := make(chan Result, 1)
	go func() {
		// Budget equal to one chunk: one worker grabs it all, solves
		// partway through, and the other workers are left waiting on
		// an empty pool with the grant outstanding.
		done <- (&ParallelNaive{Workers: 4, Chunk: 8192}).Run(fixedFactory(50), 8192)
	}()
	select {
	case res := <-done:
		if !res.Solved {
			t.Fatalf("expected a solve: %+v", res)
		}
		if res.Iterations > 8192 {
			t.Errorf("iterations %d exceed budget", res.Iterations)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel naive deadlocked after an early solve")
	}
}

func TestParallelNaivePanicsOnBadWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Workers <= 0")
		}
	}()
	(&ParallelNaive{}).Run(fixedFactory(1), 10)
}

func TestSequentialPanicsOnNonPositiveCutoff(t *testing.T) {
	// A user-supplied cutoff function returning 0 used to make Run
	// spin forever (zero used, budget never advancing); it must fail
	// fast instead.
	s := &Sequential{
		StrategyName: "broken",
		Cutoff:       func(i int) int64 { return 0 },
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for a non-positive cutoff")
		}
	}()
	s.Run(fixedFactory(-1), 1000)
}

func TestRegistryWorkersSpec(t *testing.T) {
	tree := MustNew("adaptive:500:0:8").(*Tree)
	if tree.T0 != 500 || !tree.Adaptive || tree.MaxSearches != 0 || tree.Workers != 8 {
		t.Errorf("adaptive workers spec parsed wrong: %+v", tree)
	}
	tree = MustNew("pluby:500:32:4").(*Tree)
	if tree.Adaptive || tree.MaxSearches != 32 || tree.Workers != 4 {
		t.Errorf("pluby workers spec parsed wrong: %+v", tree)
	}
	for _, bad := range []string{"adaptive:500:0:x", "adaptive:500:0:-1", "pluby:500:-2"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) succeeded", bad)
		}
	}
	// Name is executor-independent: comparisons treat both the same.
	if got := MustNew("adaptive:500:0:8").Name(); got != "adaptive" {
		t.Errorf("concurrent adaptive name = %q", got)
	}
}
