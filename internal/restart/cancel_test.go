package restart

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"stochsyn/internal/search"
)

// slowSearch never finishes and sleeps briefly on every Step, so a
// strategy driving it is wall-clock slow and must rely on cancellation
// to stop. Every consumed iteration is tallied into a shared counter,
// letting tests check the strategy's accounting against ground truth.
type slowSearch struct {
	total *atomic.Int64
	cost  float64
}

func (s *slowSearch) Step(budget int64) (int64, bool) {
	time.Sleep(50 * time.Microsecond)
	s.total.Add(budget)
	return budget, false
}

func (s *slowSearch) Cost() float64 { return s.cost }

// slowFactory yields slow never-finishing searches with varying costs
// (so the adaptive tree performs swaps while cancellation is pending).
func slowFactory(total *atomic.Int64) search.Factory {
	return func(id uint64) search.Search {
		return &slowSearch{total: total, cost: float64(id%7) + 1}
	}
}

// cancellableStrategies is the matrix for the cancellation tests: the
// sequential strategies, both tree executors, and the parallel naive
// pool.
func cancellableStrategies() []struct {
	name string
	s    Strategy
} {
	return []struct {
		name string
		s    Strategy
	}{
		{"naive", Naive{}},
		{"luby", NewLuby(1000)},
		{"tree-seq", &Tree{T0: 256, Adaptive: true}},
		{"tree-workers", &Tree{T0: 256, Adaptive: true, Workers: 4}},
		{"pluby-workers", &Tree{T0: 256, Workers: 4}},
		{"pnaive", &ParallelNaive{Workers: 4, Chunk: 512}},
	}
}

func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range cancellableStrategies() {
		t.Run(tc.name, func(t *testing.T) {
			var total atomic.Int64
			res := tc.s.RunContext(ctx, slowFactory(&total), 1<<50)
			if !res.Cancelled {
				t.Errorf("Cancelled = false, want true: %+v", res)
			}
			if res.Solved {
				t.Errorf("Solved = true on a never-finishing factory: %+v", res)
			}
			if res.Iterations != total.Load() {
				t.Errorf("accounting: result reports %d iterations, searches consumed %d",
					res.Iterations, total.Load())
			}
			if res.Iterations > 1<<20 {
				t.Errorf("pre-cancelled run consumed %d iterations, expected a prompt stop", res.Iterations)
			}
		})
	}
}

func TestCancelMidRun(t *testing.T) {
	for _, tc := range cancellableStrategies() {
		t.Run(tc.name, func(t *testing.T) {
			var total atomic.Int64
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan Result, 1)
			go func() { done <- tc.s.RunContext(ctx, slowFactory(&total), 1<<50) }()
			time.Sleep(20 * time.Millisecond)
			cancel()
			var res Result
			select {
			case res = <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("strategy did not return within 10s of cancellation")
			}
			if !res.Cancelled {
				t.Errorf("Cancelled = false, want true: %+v", res)
			}
			if res.Solved || res.Winner != nil {
				t.Errorf("Solved/Winner set on a never-finishing factory: %+v", res)
			}
			if res.Iterations <= 0 || res.Iterations >= 1<<50 {
				t.Errorf("Iterations = %d, want 0 < n < budget", res.Iterations)
			}
			if res.Iterations != total.Load() {
				t.Errorf("accounting: result reports %d iterations, searches consumed %d",
					res.Iterations, total.Load())
			}
		})
	}
}

// TestCancelNoGoroutineLeak runs the concurrent strategies through a
// cancelled execution several times and checks the goroutine count
// returns to its baseline.
func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		for _, s := range []Strategy{
			&Tree{T0: 256, Adaptive: true, Workers: 4},
			&ParallelNaive{Workers: 4, Chunk: 512},
		} {
			var total atomic.Int64
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			s.RunContext(ctx, slowFactory(&total), 1<<50)
			cancel()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after cancelled runs", before, runtime.NumGoroutine())
}

// TestRunContextUncancelledMatchesRun checks that driving a strategy
// through a live (cancellable but never cancelled) context — which
// switches stepCtx to chunked stepping — produces the same result as
// the monolithic Run path.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Strategy
	}{
		{"naive", Naive{}},
		{"luby", NewLuby(7)},
		{"fixed", NewFixed(13)},
		{"tree-seq", &Tree{T0: 16, Adaptive: true}},
		{"tree-workers", &Tree{T0: 16, Adaptive: true, Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := fixedFactory(90_000, 3_000, -1, 120_000, 70_001)
			want := tc.s.Run(f, 200_000)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			got := tc.s.RunContext(ctx, f, 200_000)

			if got.Solved != want.Solved || got.Iterations != want.Iterations ||
				got.Searches != want.Searches || got.Cancelled != want.Cancelled {
				t.Errorf("RunContext(live ctx) = %+v, Run = %+v", got, want)
			}
		})
	}
}
