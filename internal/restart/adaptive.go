package restart

import (
	"context"

	"stochsyn/internal/eqsat"
	"stochsyn/internal/obs"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
)

// Tree implements the parallel Luby algorithm and, when Adaptive is
// set, the paper's adaptive restart algorithm (Section 5.2, Figures 8
// and 9).
//
// The Luby sequence is the limit of L_0 = <1>, L_i = L_{i-1} ||
// L_{i-1} || <2^i>, which can be viewed as a series of trees traversed
// in depth-first post-order. The parallel reformulation keeps one
// search per tree node: each "doubling" pass traverses the tree in
// post-order, adds a pair of fresh 1-labeled leaves beneath each
// pre-existing leaf, runs every new leaf's search for t0 iterations,
// runs every pre-existing node's search for label*t0 additional
// iterations, and doubles its label. After n passes the multiset of
// per-search runtimes equals that of the sequential Luby algorithm, so
// the parallel form inherits Luby's O(T* ln T*) expected-time
// guarantee while keeping partial searches alive.
//
// The adaptive algorithm drops the black-box assumption: whenever the
// traversal finishes visiting a non-root node, the node's search is
// swapped with its parent's if the parent has a higher cost. Nodes
// closer to the root receive exponentially more future iterations, so
// the swaps concentrate search effort on the lowest-cost (most
// promising) runs; a sufficiently low-cost search can climb multiple
// levels within a single doubling pass.
type Tree struct {
	// T0 is the base cutoff: a node labeled l receives l*T0 iterations
	// per doubling. Must be positive.
	T0 int64
	// Adaptive enables the cost-based parent swap; when false the
	// schedule is exactly parallel Luby.
	Adaptive bool
	// MaxSearches caps the number of live searches (0 = unlimited).
	// The paper notes that, unlike sequential Luby, the parallel form
	// must retain partially executed searches, increasing memory; the
	// cap bounds that growth by stopping leaf sprouting once reached,
	// while labels keep doubling so existing searches still receive
	// exponentially growing allocations.
	MaxSearches int
	// Workers selects the executor: 0 or 1 runs the doubling tree
	// sequentially on the calling goroutine (the reference oracle);
	// larger values dispatch sibling subtree visits onto a bounded
	// pool of that many workers (see treeexec.go). Both executors
	// produce bit-identical Results for a deterministic factory, so
	// Workers trades wall-clock time only, never reproducibility.
	Workers int
	// Obs, when non-nil, receives restart telemetry: searches started,
	// per-visit iteration grants, doubling passes, adaptive swaps, and
	// the speculative/useful budget split of the concurrent executor
	// (see Instrument). Instrumentation reads no search state beyond
	// what the strategy already reads, so Results stay bit-identical.
	Obs *obs.RestartHooks
	// EqSat, when non-nil, records every fresh leaf's start program in
	// the shared rewrite-equivalence memo (eqsat.Dedup.Seed). A restart
	// whose seed is rewrite-equivalent to an earlier one is still run —
	// skipping it would break the Luby schedule's guarantee — but the
	// duplication is counted and traced, and the same memo's plateau
	// side (search.Options.EqSat) steers the duplicated walk away from
	// territory the earlier search covered. Setting EqSat forces the
	// sequential executor: the memo's sampling is shared mutable state,
	// so concurrent stepping would make trajectories depend on worker
	// interleaving, forfeiting reproducibility.
	EqSat *eqsat.Dedup
}

// Name implements Strategy.
func (t *Tree) Name() string {
	if t.Adaptive {
		return "adaptive"
	}
	return "pluby"
}

// treeNode is one node of the doubling tree. The search associated
// with a node changes as swaps occur; the label is positional and only
// indicates how many future iterations the node will be allocated.
type treeNode struct {
	label    int64
	s        search.Search
	children []*treeNode
}

// treeRun carries the mutable state of one strategy execution.
type treeRun struct {
	cfg     *Tree
	factory search.Factory
	ctx     context.Context
	budget  int64
	res     Result
}

// Run implements Strategy.
func (t *Tree) Run(f search.Factory, budget int64) Result {
	return t.RunContext(context.Background(), f, budget)
}

// RunContext implements Strategy. Cancellation is polled between
// steps of the doubling pass and, via chunked stepping, inside each
// node's iteration grant; a cancelled pass unwinds without applying
// further swaps or label doublings.
func (t *Tree) RunContext(ctx context.Context, f search.Factory, budget int64) Result {
	if t.T0 <= 0 {
		panic("restart: tree base cutoff must be positive")
	}
	if t.Workers > 1 && t.EqSat == nil {
		return t.runConcurrent(ctx, f, budget)
	}
	r := &treeRun{cfg: t, factory: f, ctx: ctx, budget: budget}
	if h := t.Obs; h != nil {
		defer func() { h.UsefulIters.Add(float64(r.res.Iterations)) }()
	}

	// The initial tree is a single 1-labeled node; run it for t0. It
	// counts as the first pass, matching ExecStats.Passes.
	r.notePass(1)
	root := r.newLeaf()
	if r.run(root, 1) {
		return r.res
	}
	// Repeat doubling passes until the budget is exhausted. Each pass
	// at least doubles the cumulative work, so the loop terminates.
	for pass := 2; r.res.Iterations < r.budget; pass++ {
		r.notePass(pass)
		if r.visit(root, nil) {
			return r.res
		}
	}
	return r.res
}

// notePass records the start of a doubling pass with the hooks.
func (r *treeRun) notePass(pass int) {
	h := r.cfg.Obs
	if h == nil {
		return
	}
	h.Passes.Inc()
	if h.Tracer != nil {
		h.Tracer.Emit("tree_pass", map[string]any{
			"strategy": r.cfg.Name(), "pass": pass,
			"searches": r.res.Searches, "iterations": r.res.Iterations,
		})
	}
}

// newLeaf creates a fresh 1-labeled leaf with a new search.
func (r *treeRun) newLeaf() *treeNode {
	s := r.factory(uint64(r.res.Searches))
	r.res.Searches++
	if h := r.cfg.Obs; h != nil {
		h.Restarts.Inc()
		if h.Tracer != nil {
			h.Tracer.Emit("restart_fire", map[string]any{
				"strategy": r.cfg.Name(), "search": uint64(r.res.Searches - 1), "cutoff": r.cfg.T0,
			})
		}
	}
	seedDedup(r.cfg, s, uint64(r.res.Searches-1))
	return &treeNode{label: 1, s: s}
}

// seedDedup records a fresh search's start program in the shared
// rewrite-equivalence memo, tracing duplicated seeds. It runs on the
// goroutine that created the leaf (the planning goroutine in the
// concurrent executor), so trace-event order matches the sequential
// schedule.
func seedDedup(cfg *Tree, s search.Search, id uint64) {
	d := cfg.EqSat
	if d == nil {
		return
	}
	pr, ok := s.(interface{ Program() *prog.Program })
	if !ok {
		return
	}
	if d.Seed(pr.Program()) {
		if h := cfg.Obs; h != nil && h.Tracer != nil {
			h.Tracer.Emit("restart_seed_dup", map[string]any{
				"strategy": cfg.Name(), "search": id,
			})
		}
	}
}

// run executes n's search for units*T0 iterations (clipped to the
// remaining budget) and returns true if the strategy is finished
// (solved, cancelled, or out of budget).
func (r *treeRun) run(n *treeNode, units int64) bool {
	iters := units * r.cfg.T0
	if remaining := r.budget - r.res.Iterations; iters > remaining {
		iters = remaining
	}
	if iters <= 0 {
		return r.res.Iterations >= r.budget
	}
	if h := r.cfg.Obs; h != nil {
		h.CutoffIters.Observe(float64(iters))
	}
	used, done, cancelled := stepCtx(r.ctx, n.s, iters)
	r.res.Iterations += used
	if done {
		r.res.Solved = true
		r.res.Winner = n.s
		return true
	}
	if cancelled {
		r.res.Cancelled = true
		return true
	}
	return r.res.Iterations >= r.budget
}

// visit performs one doubling pass over the subtree rooted at n in
// depth-first post-order, returning true if the strategy is finished.
// parent is nil for the root.
func (r *treeRun) visit(n *treeNode, parent *treeNode) bool {
	if len(n.children) == 0 {
		// Pre-existing leaf: sprout two fresh 1-labeled leaves and run
		// each for t0. The new leaves keep label 1 this pass (they are
		// the 1-entries of the extended Luby sequence). Sprouting
		// stops at the search cap, if one is set.
		for i := 0; i < 2; i++ {
			if r.cfg.MaxSearches > 0 && r.res.Searches >= r.cfg.MaxSearches {
				break
			}
			c := r.newLeaf()
			n.children = append(n.children, c)
			if r.run(c, 1) {
				return true
			}
			r.maybeSwap(c, n)
		}
	} else {
		for _, c := range n.children {
			if r.visit(c, n) {
				return true
			}
		}
	}
	// Run the node for label*t0 additional iterations and double its
	// label; cumulatively the node has then run 2*label*t0, matching
	// the sequential algorithm's visit of a 2*label node.
	if r.run(n, n.label) {
		return true
	}
	n.label *= 2
	r.maybeSwap(n, parent)
	return false
}

// maybeSwap applies the adaptive rule: after finishing a non-root
// node's visit, swap its search with the parent's if the parent's cost
// is higher.
func (r *treeRun) maybeSwap(n, parent *treeNode) {
	if !r.cfg.Adaptive || parent == nil {
		return
	}
	if parent.s.Cost() > n.s.Cost() {
		parent.s, n.s = n.s, parent.s
		if h := r.cfg.Obs; h != nil {
			h.Swaps.Inc()
			if h.Tracer != nil {
				h.Tracer.Emit("tree_promote", map[string]any{
					"strategy": r.cfg.Name(),
					"cost":     parent.s.Cost(), "displaced": n.s.Cost(),
				})
			}
		}
	}
}

// NewParallelLuby returns the parallel Luby strategy with base cutoff
// t0 (no cost-based swaps).
func NewParallelLuby(t0 int64) *Tree { return &Tree{T0: t0} }

// NewAdaptive returns the paper's adaptive restart strategy with base
// cutoff t0.
func NewAdaptive(t0 int64) *Tree { return &Tree{T0: t0, Adaptive: true} }
