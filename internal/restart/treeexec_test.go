package restart

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/testcase"
)

// dynSearch is a deterministic fake whose cost falls as it runs, so
// adaptive swap decisions change over time and the executor's
// join-point ordering is actually exercised. It satisfies the Search
// contract (full budget consumption unless finishing).
type dynSearch struct {
	id       uint64
	finishAt int64 // -1: never
	ran      int64
	base     float64
}

func (d *dynSearch) Step(budget int64) (int64, bool) {
	if d.finishAt >= 0 && d.ran >= d.finishAt {
		return 0, true
	}
	remaining := int64(1 << 62)
	if d.finishAt >= 0 {
		remaining = d.finishAt - d.ran
	}
	if budget < remaining {
		d.ran += budget
		return budget, false
	}
	d.ran += remaining
	return remaining, true
}

func (d *dynSearch) Cost() float64 {
	if d.finishAt >= 0 && d.ran >= d.finishAt {
		return 0
	}
	return d.base / (1 + float64(d.ran)/64)
}

// dynFactory builds a deterministic factory: everything about search
// id is a pure function of (seed, id), as the Factory contract
// requires.
func dynFactory(seed uint64) search.Factory {
	return func(id uint64) search.Search {
		rng := rand.New(rand.NewPCG(seed, id))
		finish := int64(-1)
		if rng.IntN(4) == 0 {
			finish = int64(200 + rng.IntN(20000))
		}
		return &dynSearch{id: id, finishAt: finish, base: float64(1 + rng.IntN(97))}
	}
}

// winnerID extracts the fake winner's id (-1 when unsolved).
func winnerID(res Result) int64 {
	if w, ok := res.Winner.(*dynSearch); ok {
		return int64(w.id)
	}
	return -1
}

func requireEqualResults(t *testing.T, name string, seq, conc Result) {
	t.Helper()
	if seq.Solved != conc.Solved || seq.Iterations != conc.Iterations || seq.Searches != conc.Searches {
		t.Errorf("%s: concurrent executor diverged from sequential oracle:\n  sequential %+v\n  concurrent %+v",
			name, seq, conc)
	}
	if ws, wc := winnerID(seq), winnerID(conc); ws != wc {
		t.Errorf("%s: winner diverged: sequential id %d, concurrent id %d", name, ws, wc)
	}
}

func TestTreeExecMatchesSequentialOracle(t *testing.T) {
	for _, tc := range []struct {
		name     string
		adaptive bool
		t0       int64
		max      int
		budget   int64
		workers  int
		seed     uint64
	}{
		{"pluby-small", false, 7, 0, 999, 2, 1},
		{"pluby-mid", false, 100, 0, 77_777, 3, 2},
		{"pluby-capped", false, 10, 24, 50_000, 8, 3},
		{"adaptive-small", true, 7, 0, 999, 2, 4},
		{"adaptive-mid", true, 100, 0, 77_777, 8, 5},
		{"adaptive-large", true, 50, 0, 300_000, 8, 6},
		{"adaptive-capped", true, 10, 24, 120_000, 4, 7},
		{"adaptive-tiny-budget", true, 1000, 0, 500, 8, 8},
		{"adaptive-exact-t0", true, 1000, 0, 1000, 8, 9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := (&Tree{T0: tc.t0, Adaptive: tc.adaptive, MaxSearches: tc.max}).
				Run(dynFactory(tc.seed), tc.budget)
			conc := (&Tree{T0: tc.t0, Adaptive: tc.adaptive, MaxSearches: tc.max, Workers: tc.workers}).
				Run(dynFactory(tc.seed), tc.budget)
			requireEqualResults(t, tc.name, seq, conc)
			if seq.Exec != nil {
				t.Error("sequential oracle reported executor stats")
			}
			if conc.Exec == nil {
				t.Fatal("concurrent executor reported no stats")
			}
		})
	}
}

func TestTreeExecPropertyEquivalence(t *testing.T) {
	f := func(seed uint64, budgetRaw uint16, adaptive bool) bool {
		budget := int64(budgetRaw)%30_000 + 1
		t0 := int64(seed%37) + 1
		seq := (&Tree{T0: t0, Adaptive: adaptive}).Run(dynFactory(seed), budget)
		conc := (&Tree{T0: t0, Adaptive: adaptive, Workers: 4}).Run(dynFactory(seed), budget)
		return seq.Solved == conc.Solved &&
			seq.Iterations == conc.Iterations &&
			seq.Searches == conc.Searches &&
			winnerID(seq) == winnerID(conc)
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTreeExecDeterministicAcrossRuns(t *testing.T) {
	// Two concurrent executions with the same factory seed must agree
	// with each other (not only with the oracle), whatever the
	// goroutine interleaving.
	run := func() Result {
		return (&Tree{T0: 25, Adaptive: true, Workers: 6}).Run(dynFactory(99), 200_000)
	}
	a, b := run(), run()
	requireEqualResults(t, "repeat", a, b)
}

// modelFactory builds real synthesis searches on the Section 4 model
// dialect for the paper's or(shl(x), x) problem.
func modelFactory(seed uint64) search.Factory {
	rng := rand.New(rand.NewPCG(11, 17))
	suite := testcase.Generate(testcase.Func(func(in []uint64) uint64 {
		return (in[0] << 1) | in[0]
	}), 1, 16, rng)
	return search.NewFactory(suite, search.Options{
		Set:        prog.ModelSet,
		Cost:       cost.Hamming,
		Beta:       1,
		Redundancy: true,
		Seed:       seed,
	})
}

func TestTreeExecMatchesOracleOnModelDialect(t *testing.T) {
	budget := int64(250_000)
	if testing.Short() {
		budget = 60_000
	}
	for _, adaptive := range []bool{true, false} {
		name := "pluby"
		if adaptive {
			name = "adaptive"
		}
		for _, seed := range []uint64{2, 3} {
			seq := (&Tree{T0: 300, Adaptive: adaptive}).Run(modelFactory(seed), budget)
			conc := (&Tree{T0: 300, Adaptive: adaptive, Workers: 4}).Run(modelFactory(seed), budget)
			requireEqualResults(t, name, seq, conc)
			if seq.Solved {
				sp := seq.Winner.(*search.Run).Solution().String()
				cp := conc.Winner.(*search.Run).Solution().String()
				if sp != cp {
					t.Errorf("%s seed %d: winning programs diverged: %q vs %q", name, seed, sp, cp)
				}
			}
		}
	}
}

func TestTreeExecStatsConsistent(t *testing.T) {
	budget := int64(150_000)
	res := (&Tree{T0: 20, Adaptive: true, Workers: 4}).Run(dynFactory(6), budget)
	st := res.Exec
	if st == nil {
		t.Fatal("no exec stats")
	}
	if st.Workers != 4 {
		t.Errorf("Workers = %d", st.Workers)
	}
	if st.Passes < 1 {
		t.Errorf("Passes = %d", st.Passes)
	}
	if st.BudgetSpent < res.Iterations {
		t.Errorf("BudgetSpent %d < accounted Iterations %d", st.BudgetSpent, res.Iterations)
	}
	if st.BudgetSpent > budget {
		t.Errorf("BudgetSpent %d exceeds budget %d", st.BudgetSpent, budget)
	}
	if st.Speculated != st.BudgetSpent-res.Iterations {
		t.Errorf("Speculated %d inconsistent with spent %d - iterations %d",
			st.Speculated, st.BudgetSpent, res.Iterations)
	}
	if st.BudgetStranded != budget-st.BudgetSpent {
		t.Errorf("BudgetStranded %d, want %d", st.BudgetStranded, budget-st.BudgetSpent)
	}
	if st.SearchesLive < res.Searches {
		t.Errorf("SearchesLive %d < accounted Searches %d", st.SearchesLive, res.Searches)
	}
	if st.Utilization < 0 || st.Utilization > 1.001 {
		t.Errorf("Utilization %g out of range", st.Utilization)
	}
	if res.Solved && st.Swaps == 0 && st.Steps > 50 {
		t.Log("note: adaptive run performed no swaps (legal but unusual)")
	}
}

func TestTreeExecRespectsBudget(t *testing.T) {
	for _, budget := range []int64{1, 7, 100, 12345} {
		res := (&Tree{T0: 10, Adaptive: true, Workers: 4}).Run(fixedFactory(-1), budget)
		if res.Iterations > budget {
			t.Errorf("budget %d exceeded: %d", budget, res.Iterations)
		}
		if res.Solved {
			t.Error("unsolvable factory solved")
		}
		if res.Exec != nil && res.Exec.BudgetSpent > budget {
			t.Errorf("budget %d: executor spent %d", budget, res.Exec.BudgetSpent)
		}
	}
}
