package restart

import (
	"testing"

	"stochsyn/internal/obs"
)

// TestInstrumentBitIdentical runs each strategy bare and instrumented
// over the same deterministic factory and requires identical Results:
// attaching hooks must never perturb the schedule.
func TestInstrumentBitIdentical(t *testing.T) {
	for _, spec := range []string{
		"naive", "luby:100", "fixed:500", "exp:100:2", "innerouter:100:2",
		"pluby:100", "adaptive:100", "adaptive:100:0:4",
	} {
		bare := MustNew(spec)
		f := fixedFactory(123_457, 900, 40_000, -1)
		want := bare.Run(f, 200_000)

		o := obs.New()
		inst := Instrument(MustNew(spec), NewObsHooks(o.Reg, o.Tracer, bare.Name()))
		got := inst.Run(fixedFactory(123_457, 900, 40_000, -1), 200_000)

		if got.Solved != want.Solved || got.Iterations != want.Iterations ||
			got.Searches != want.Searches {
			t.Errorf("%s: instrumented Result diverged: got %+v, want %+v", spec, got, want)
			continue
		}
		// The restarts counter equals the searches actually created:
		// Result.Searches for the sequential strategies, the live count
		// (including speculative leaves planned past an early solve)
		// under the concurrent executor.
		wantRestarts := got.Searches
		if got.Exec != nil {
			wantRestarts = got.Exec.SearchesLive
		}
		c := o.Reg.Counter("stochsyn_restarts_total", "strategy", bare.Name())
		if int(c.Value()) != wantRestarts {
			t.Errorf("%s: restarts counter = %g, want %d", spec, c.Value(), wantRestarts)
		}
		// Useful iterations match the Result's accounting exactly.
		u := o.Reg.Counter("stochsyn_useful_iterations_total", "strategy", bare.Name())
		if int64(u.Value()) != got.Iterations {
			t.Errorf("%s: useful iterations = %g, want %d", spec, u.Value(), got.Iterations)
		}
	}
}

// TestInstrumentDoesNotMutate verifies Instrument copies the strategy
// rather than attaching hooks to a shared value.
func TestInstrumentDoesNotMutate(t *testing.T) {
	tree := MustNew("adaptive:100").(*Tree)
	h := NewObsHooks(obs.NewRegistry(), nil, "adaptive")
	inst := Instrument(tree, h)
	if tree.Obs != nil {
		t.Fatal("Instrument mutated the original strategy")
	}
	if inst.(*Tree).Obs != h {
		t.Fatal("Instrument did not attach the hooks to the copy")
	}
	if Instrument(tree, nil) != Strategy(tree) {
		t.Fatal("Instrument(s, nil) must return s unchanged")
	}
	n := Instrument(Naive{}, h)
	if n.(Naive).Obs != h {
		t.Fatal("Instrument did not handle the Naive value type")
	}
}

// TestTreeObsCounters checks the tree-specific series: pass counts,
// swap counts matching ExecStats, and the speculative/useful split
// summing to the executor's spend.
func TestTreeObsCounters(t *testing.T) {
	for _, workers := range []int{1, 4} {
		o := obs.New()
		h := NewObsHooks(o.Reg, o.Tracer, "adaptive")
		tree := &Tree{T0: 100, Adaptive: true, Workers: workers, Obs: h}
		// Never-finishing searches with varied costs so the adaptive
		// rule performs swaps.
		cf := &countingFactory{
			finishAt: func(uint64) int64 { return -1 },
			costOf:   func(id uint64) float64 { return float64(1 + id%7) },
		}
		res := tree.Run(cf.factory(), 100_000)

		name := func(s string) float64 {
			return o.Reg.Counter(s, "strategy", "adaptive").Value()
		}
		if got := name("stochsyn_tree_passes_total"); got < 2 {
			t.Errorf("workers=%d: passes counter = %g, want >= 2", workers, got)
		}
		if res.Exec != nil {
			if got := int64(name("stochsyn_tree_swaps_total")); got != res.Exec.Swaps {
				t.Errorf("workers=%d: swaps counter = %d, want %d", workers, got, res.Exec.Swaps)
			}
			useful := int64(name("stochsyn_useful_iterations_total"))
			spec := int64(name("stochsyn_speculated_iterations_total"))
			if useful != res.Iterations || spec != res.Exec.Speculated {
				t.Errorf("workers=%d: useful=%d spec=%d, want %d and %d",
					workers, useful, spec, res.Iterations, res.Exec.Speculated)
			}
		}
		// Cutoff histogram saw every grant: its count is at least the
		// number of searches (each new leaf runs once).
		hist := o.Reg.Histogram("stochsyn_restart_cutoff_iters", nil, "strategy", "adaptive")
		if hist.Count() < uint64(res.Searches) {
			t.Errorf("workers=%d: cutoff observations = %d < searches %d",
				workers, hist.Count(), res.Searches)
		}
	}
}
