package restart

import (
	"sort"
	"testing"

	"stochsyn/internal/search"
)

// countingFactory records how many searches were created and their
// total run lengths.
type countingFactory struct {
	searches []*fakeSearch
	finishAt func(id uint64) int64
	costOf   func(id uint64) float64
}

func (c *countingFactory) factory() search.Factory {
	return func(id uint64) search.Search {
		fs := &fakeSearch{finishAt: c.finishAt(id), cost: c.costOf(id)}
		c.searches = append(c.searches, fs)
		return fs
	}
}

func TestParallelLubyMatchesSequentialSchedule(t *testing.T) {
	// With searches that never finish, after the budget is consumed
	// the multiset of per-search runtimes must equal the sequential
	// Luby schedule's (t0 * Luby(i) for the completed prefix).
	cf := &countingFactory{
		finishAt: func(uint64) int64 { return -1 },
		costOf:   func(uint64) float64 { return 10 },
	}
	t0 := int64(10)
	// Budget for exactly the first 3 doublings: sequential Luby visits
	// 1,1,2 then 1,1,2,4 ... choose the total of L2 = <1,1,2,1,1,2,4>:
	// 12 units * 10 = 120.
	res := NewParallelLuby(t0).Run(cf.factory(), 120)
	if res.Solved {
		t.Fatal("unsolvable searches solved")
	}
	if res.Iterations != 120 {
		t.Fatalf("consumed %d of 120", res.Iterations)
	}
	var got []int64
	for _, s := range cf.searches {
		got = append(got, s.ran)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	// Sequential Luby with 120 units: cutoffs 10,10,20,10,10,20,40 ->
	// sorted 10,10,10,10,20,20,40.
	want := []int64{10, 10, 10, 10, 20, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("ran %d searches, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("runtime multiset %v, want %v", got, want)
		}
	}
}

func TestAdaptiveFindsFastSearch(t *testing.T) {
	// Search id 3 finishes quickly; others never do.
	cf := &countingFactory{
		finishAt: func(id uint64) int64 {
			if id == 3 {
				return 25
			}
			return -1
		},
		costOf: func(uint64) float64 { return 10 },
	}
	res := NewAdaptive(10).Run(cf.factory(), 10_000)
	if !res.Solved {
		t.Fatal("adaptive never finished the fast search")
	}
}

func TestAdaptivePrioritizesLowCost(t *testing.T) {
	// Two kinds of searches: "promising" ones with low cost that
	// finish after 200 more iterations, and high-cost ones that never
	// finish. The adaptive algorithm should finish sooner than
	// parallel Luby because it promotes the promising searches into
	// big allocations.
	newFactory := func() search.Factory {
		return func(id uint64) search.Search {
			if id%4 == 1 {
				return &fakeSearch{finishAt: 200, cost: 1}
			}
			return &fakeSearch{finishAt: -1, cost: 100}
		}
	}
	adaptive := NewAdaptive(10).Run(newFactory(), 100_000)
	pluby := NewParallelLuby(10).Run(newFactory(), 100_000)
	if !adaptive.Solved || !pluby.Solved {
		t.Fatalf("adaptive solved=%v, pluby solved=%v", adaptive.Solved, pluby.Solved)
	}
	if adaptive.Iterations >= pluby.Iterations {
		t.Errorf("adaptive (%d iters) not faster than parallel luby (%d iters)",
			adaptive.Iterations, pluby.Iterations)
	}
}

func TestAdaptiveMisledByWrongCosts(t *testing.T) {
	// Reversed correlation (the Figure 10(b) situation): the quick
	// finishers carry HIGH cost, while low-cost searches take 100x
	// longer. The adaptive algorithm pours iterations into the
	// misleading low-cost searches and mostly ends up finishing one of
	// THOSE, well after parallel Luby (which ignores costs) has hit a
	// quick finisher.
	newFactory := func() search.Factory {
		return func(id uint64) search.Search {
			if id%2 == 1 {
				return &fakeSearch{finishAt: 60, cost: 100}
			}
			return &fakeSearch{finishAt: 6000, cost: 1}
		}
	}
	adaptive := NewAdaptive(10).Run(newFactory(), 2_000_000)
	pluby := NewParallelLuby(10).Run(newFactory(), 2_000_000)
	if !adaptive.Solved || !pluby.Solved {
		t.Fatalf("adaptive solved=%v, pluby solved=%v", adaptive.Solved, pluby.Solved)
	}
	if adaptive.Iterations <= pluby.Iterations {
		t.Errorf("expected adaptive (%d) to be slower than parallel luby (%d) under reversed costs",
			adaptive.Iterations, pluby.Iterations)
	}
}

func TestTreeRespectsBudget(t *testing.T) {
	for _, budget := range []int64{1, 7, 100, 12345} {
		res := NewAdaptive(10).Run(fixedFactory(-1), budget)
		if res.Iterations > budget {
			t.Errorf("budget %d exceeded: %d", budget, res.Iterations)
		}
		if res.Solved {
			t.Error("unsolvable factory solved")
		}
	}
}

func TestTreeNames(t *testing.T) {
	if got := NewAdaptive(10).Name(); got != "adaptive" {
		t.Errorf("adaptive name = %q", got)
	}
	if got := NewParallelLuby(10).Name(); got != "pluby" {
		t.Errorf("parallel luby name = %q", got)
	}
}

func TestTreeGrowth(t *testing.T) {
	// After a large budget the number of searches should grow roughly
	// like the sequential algorithm's search count (powers of two per
	// doubling), not explode or stall.
	cf := &countingFactory{
		finishAt: func(uint64) int64 { return -1 },
		costOf:   func(uint64) float64 { return 10 },
	}
	NewParallelLuby(1).Run(cf.factory(), 1<<14)
	n := len(cf.searches)
	// With budget 2^14 and t0=1 the doubling count is ~10, so the tree
	// has between 2^9 and 2^13 nodes.
	if n < 1<<9 || n > 1<<13 {
		t.Errorf("tree grew to %d searches", n)
	}
}

func TestTreeMaxSearches(t *testing.T) {
	cf := &countingFactory{
		finishAt: func(uint64) int64 { return -1 },
		costOf:   func(uint64) float64 { return 10 },
	}
	strat := &Tree{T0: 1, Adaptive: true, MaxSearches: 16}
	res := strat.Run(cf.factory(), 1<<14)
	if res.Searches > 16 {
		t.Errorf("cap ignored: %d searches", res.Searches)
	}
	if res.Iterations != 1<<14 {
		t.Errorf("budget not fully consumed: %d", res.Iterations)
	}
	// Existing searches must keep accumulating time after the cap.
	var maxRan int64
	for _, s := range cf.searches {
		if s.ran > maxRan {
			maxRan = s.ran
		}
	}
	if maxRan < 1<<10 {
		t.Errorf("capped tree stopped growing allocations: max ran %d", maxRan)
	}
}

func TestRegistrySearchCap(t *testing.T) {
	s := MustNew("adaptive:10:32").(*Tree)
	if s.T0 != 10 || !s.Adaptive || s.MaxSearches != 32 {
		t.Errorf("spec parsed wrong: %+v", s)
	}
	p := MustNew("pluby:10:32").(*Tree)
	if p.MaxSearches != 32 || p.Adaptive {
		t.Errorf("pluby spec parsed wrong: %+v", p)
	}
	if _, err := New("adaptive:10:x"); err == nil {
		t.Error("bad cap accepted")
	}
}
