// Package restart implements the restart strategies of Section 5 of
// the paper: the naive (never-restart) baseline, classic black-box
// strategies driven by cutoff sequences (fixed optimal cutoff, the
// Luby sequence, exponentially increasing cutoffs, and the inner-outer
// geometric strategy of PicoSAT), the parallel reformulation of Luby
// that keeps searches alive in a doubling tree (Figure 8), and the
// paper's adaptive restart algorithm (Figure 9), which swaps low-cost
// searches toward the root of the tree so the most promising runs
// receive the largest iteration allocations.
//
// All strategies account their work in search-loop iterations against
// a single global budget, the paper's hardware-independent unit.
package restart

import (
	"context"
	"fmt"

	"stochsyn/internal/obs"
	"stochsyn/internal/search"
)

// Result summarizes one strategy execution.
type Result struct {
	// Solved reports whether any search finished within the budget.
	Solved bool
	// Iterations is the total number of iterations consumed across
	// all searches (the paper's measure of synthesis time). Under
	// cancellation this is the exact number of iterations that were
	// executed before the run stopped.
	Iterations int64
	// Searches is the number of searches created.
	Searches int
	// Winner is the search that finished, or nil. Callers may
	// type-assert it (e.g. to *search.Run) to retrieve the solution.
	Winner search.Search
	// Cancelled reports that the run was stopped by context
	// cancellation before it either solved the problem or exhausted
	// its budget. A run that solves just as its context expires
	// reports Solved, not Cancelled.
	Cancelled bool
	// Exec holds executor counters when the strategy ran on the
	// concurrent tree executor (Tree.Workers > 1), and is nil
	// otherwise. It never influences the fields above.
	Exec *ExecStats
}

// Strategy drives searches created by a factory under a total
// iteration budget and reports the outcome. Implementations must be
// deterministic given the factory.
type Strategy interface {
	Name() string
	// Run is RunContext under a background (never-cancelled) context.
	Run(f search.Factory, budget int64) Result
	// RunContext runs the strategy until it solves, exhausts the
	// budget, or ctx is cancelled — whichever comes first. With a
	// context that never expires the Result is bit-identical to
	// Run's; on cancellation the strategy returns promptly with
	// Result.Cancelled set and exact iteration accounting (every
	// iteration actually executed is counted, and nothing else).
	RunContext(ctx context.Context, f search.Factory, budget int64) Result
}

// stepChunk is the largest single grant handed to a Search when it is
// driven under a cancellable context: strategies step searches in
// chunks of at most this many iterations and poll the context between
// chunks, so even searches that do not observe a context themselves
// (e.g. the model Markov chains) are cancelled within one chunk.
// Chunked stepping is observationally identical to a single Step call
// for any Search honoring the resumability contract, so results stay
// bit-identical to the monolithic schedule.
const stepChunk = 1 << 16

// stepCtx drives s for up to budget iterations under ctx, stepping in
// chunks of stepChunk and polling ctx between chunks. It returns the
// iterations consumed, whether the search finished, and whether the
// run was cancelled. A Step that returns early (contractually allowed
// only under a cancelled context) is reported as cancelled.
func stepCtx(ctx context.Context, s search.Search, budget int64) (used int64, done, cancelled bool) {
	background := ctx == nil || ctx.Done() == nil
	for used < budget {
		if !background && ctx.Err() != nil {
			return used, false, true
		}
		grant := budget - used
		if !background && grant > stepChunk {
			grant = stepChunk
		}
		u, stepDone := s.Step(grant)
		used += u
		if stepDone {
			return used, true, false
		}
		if u < grant {
			// The Search contract permits an early unfinished return
			// only under a cancelled context.
			return used, false, true
		}
	}
	return used, false, false
}

// Naive is the baseline algorithm that never restarts: it runs a
// single search until it completes or the budget times out.
type Naive struct {
	// Obs, when non-nil, receives restart telemetry (see Instrument).
	Obs *obs.RestartHooks
}

// Name implements Strategy.
func (Naive) Name() string { return "naive" }

// Run implements Strategy.
func (n Naive) Run(f search.Factory, budget int64) Result {
	return n.RunContext(context.Background(), f, budget)
}

// RunContext implements Strategy.
func (n Naive) RunContext(ctx context.Context, f search.Factory, budget int64) Result {
	s := f(0)
	fire(n.Obs, "naive", 0, budget)
	used, done, cancelled := stepCtx(ctx, s, budget)
	res := Result{Solved: done, Iterations: used, Searches: 1, Cancelled: cancelled}
	if done {
		res.Winner = s
	}
	if h := n.Obs; h != nil {
		h.UsefulIters.Add(float64(res.Iterations))
	}
	return res
}

// Sequential is a classic black-box restart strategy defined by a
// cutoff sequence: search i runs for Cutoff(i) iterations (1-based)
// and is abandoned if it has not finished.
type Sequential struct {
	// StrategyName names the strategy for reports.
	StrategyName string
	// Cutoff returns the iteration cutoff for the i-th search, i >= 1.
	Cutoff func(i int) int64
	// Obs, when non-nil, receives restart telemetry (see Instrument).
	Obs *obs.RestartHooks
}

// Name implements Strategy.
func (s *Sequential) Name() string { return s.StrategyName }

// Run implements Strategy. It panics if the Cutoff function returns a
// non-positive value: a zero cutoff consumes no budget, so tolerating
// it would spin forever without making progress.
func (s *Sequential) Run(f search.Factory, budget int64) Result {
	return s.RunContext(context.Background(), f, budget)
}

// RunContext implements Strategy: cancellation is polled between
// restarts and, via chunked stepping, inside each cutoff.
func (s *Sequential) RunContext(ctx context.Context, f search.Factory, budget int64) Result {
	var res Result
	if h := s.Obs; h != nil {
		defer func() { h.UsefulIters.Add(float64(res.Iterations)) }()
	}
	for i := 1; res.Iterations < budget; i++ {
		cut := s.Cutoff(i)
		if cut <= 0 {
			panic(fmt.Sprintf("restart: %s cutoff for search %d is %d, must be positive", s.StrategyName, i, cut))
		}
		if remaining := budget - res.Iterations; cut > remaining {
			cut = remaining
		}
		run := f(uint64(i - 1))
		res.Searches++
		fire(s.Obs, s.StrategyName, uint64(i-1), cut)
		used, done, cancelled := stepCtx(ctx, run, cut)
		res.Iterations += used
		if done {
			res.Solved = true
			res.Winner = run
			return res
		}
		if cancelled {
			res.Cancelled = true
			return res
		}
	}
	return res
}

// NewFixed returns the fixed-cutoff strategy: restart every cutoff
// iterations. With the distribution-optimal cutoff t* this is the best
// possible black-box strategy (Section 5.1).
func NewFixed(cutoff int64) *Sequential {
	if cutoff <= 0 {
		panic("restart: fixed cutoff must be positive")
	}
	return &Sequential{
		StrategyName: fmt.Sprintf("fixed(%d)", cutoff),
		Cutoff:       func(int) int64 { return cutoff },
	}
}

// NewLuby returns the classic Luby restart strategy with base cutoff
// t0: search i runs t0 * Luby(i) iterations.
func NewLuby(t0 int64) *Sequential {
	if t0 <= 0 {
		panic("restart: luby base cutoff must be positive")
	}
	return &Sequential{
		StrategyName: "luby",
		Cutoff:       func(i int) int64 { return t0 * Luby(i) },
	}
}

// NewExponential returns the exponentially increasing cutoff strategy
// t0 * z^k for k = 0, 1, 2, ... (Section 5.1).
func NewExponential(t0 int64, z float64) *Sequential {
	if t0 <= 0 || z <= 1 {
		panic("restart: exponential strategy requires t0 > 0 and z > 1")
	}
	return &Sequential{
		StrategyName: fmt.Sprintf("exp(z=%g)", z),
		Cutoff: func(i int) int64 {
			c := float64(t0)
			for k := 1; k < i; k++ {
				c *= z
				if c > 1e18 {
					break
				}
			}
			return int64(c)
		},
	}
}

// NewInnerOuter returns the inner-outer geometric strategy of PicoSAT:
// cutoffs t0 * z^k with k = 0, 1, 0, 1, 2, 0, 1, 2, 3, ...
func NewInnerOuter(t0 int64, z float64) *Sequential {
	if t0 <= 0 || z <= 1 {
		panic("restart: inner-outer strategy requires t0 > 0 and z > 1")
	}
	return &Sequential{
		StrategyName: fmt.Sprintf("innerouter(z=%g)", z),
		Cutoff: func(i int) int64 {
			k := innerOuterK(i)
			c := float64(t0)
			for j := 0; j < k; j++ {
				c *= z
				if c > 1e18 {
					break
				}
			}
			return int64(c)
		},
	}
}

// innerOuterK maps the 1-based search index to the exponent sequence
// 0, 1, 0, 1, 2, 0, 1, 2, 3, ...: round r (1-based) consists of the
// exponents 0..r.
func innerOuterK(i int) int {
	i-- // 0-based position
	r := 1
	for {
		if i < r+1 {
			return i
		}
		i -= r + 1
		r++
	}
}

// Luby returns the i-th element (1-based) of the Luby sequence
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func Luby(i int) int64 {
	if i < 1 {
		panic("restart: Luby index must be >= 1")
	}
	// If i == 2^k - 1 the value is 2^(k-1); otherwise recurse on the
	// position within the trailing copy of the previous block.
	for k := 1; ; k++ {
		if i == 1<<k-1 {
			return int64(1) << (k - 1)
		}
		if i < 1<<k-1 {
			return Luby(i - (1<<(k-1) - 1))
		}
	}
}
