// Package restart implements the restart strategies of Section 5 of
// the paper: the naive (never-restart) baseline, classic black-box
// strategies driven by cutoff sequences (fixed optimal cutoff, the
// Luby sequence, exponentially increasing cutoffs, and the inner-outer
// geometric strategy of PicoSAT), the parallel reformulation of Luby
// that keeps searches alive in a doubling tree (Figure 8), and the
// paper's adaptive restart algorithm (Figure 9), which swaps low-cost
// searches toward the root of the tree so the most promising runs
// receive the largest iteration allocations.
//
// All strategies account their work in search-loop iterations against
// a single global budget, the paper's hardware-independent unit.
package restart

import (
	"fmt"

	"stochsyn/internal/search"
)

// Result summarizes one strategy execution.
type Result struct {
	// Solved reports whether any search finished within the budget.
	Solved bool
	// Iterations is the total number of iterations consumed across
	// all searches (the paper's measure of synthesis time).
	Iterations int64
	// Searches is the number of searches created.
	Searches int
	// Winner is the search that finished, or nil. Callers may
	// type-assert it (e.g. to *search.Run) to retrieve the solution.
	Winner search.Search
	// Exec holds executor counters when the strategy ran on the
	// concurrent tree executor (Tree.Workers > 1), and is nil
	// otherwise. It never influences the fields above.
	Exec *ExecStats
}

// Strategy drives searches created by a factory under a total
// iteration budget and reports the outcome. Implementations must be
// deterministic given the factory.
type Strategy interface {
	Name() string
	Run(f search.Factory, budget int64) Result
}

// Naive is the baseline algorithm that never restarts: it runs a
// single search until it completes or the budget times out.
type Naive struct{}

// Name implements Strategy.
func (Naive) Name() string { return "naive" }

// Run implements Strategy.
func (Naive) Run(f search.Factory, budget int64) Result {
	s := f(0)
	used, done := s.Step(budget)
	res := Result{Solved: done, Iterations: used, Searches: 1}
	if done {
		res.Winner = s
	}
	return res
}

// Sequential is a classic black-box restart strategy defined by a
// cutoff sequence: search i runs for Cutoff(i) iterations (1-based)
// and is abandoned if it has not finished.
type Sequential struct {
	// StrategyName names the strategy for reports.
	StrategyName string
	// Cutoff returns the iteration cutoff for the i-th search, i >= 1.
	Cutoff func(i int) int64
}

// Name implements Strategy.
func (s *Sequential) Name() string { return s.StrategyName }

// Run implements Strategy. It panics if the Cutoff function returns a
// non-positive value: a zero cutoff consumes no budget, so tolerating
// it would spin forever without making progress.
func (s *Sequential) Run(f search.Factory, budget int64) Result {
	var res Result
	for i := 1; res.Iterations < budget; i++ {
		cut := s.Cutoff(i)
		if cut <= 0 {
			panic(fmt.Sprintf("restart: %s cutoff for search %d is %d, must be positive", s.StrategyName, i, cut))
		}
		if remaining := budget - res.Iterations; cut > remaining {
			cut = remaining
		}
		run := f(uint64(i - 1))
		res.Searches++
		used, done := run.Step(cut)
		res.Iterations += used
		if done {
			res.Solved = true
			res.Winner = run
			return res
		}
	}
	return res
}

// NewFixed returns the fixed-cutoff strategy: restart every cutoff
// iterations. With the distribution-optimal cutoff t* this is the best
// possible black-box strategy (Section 5.1).
func NewFixed(cutoff int64) *Sequential {
	if cutoff <= 0 {
		panic("restart: fixed cutoff must be positive")
	}
	return &Sequential{
		StrategyName: fmt.Sprintf("fixed(%d)", cutoff),
		Cutoff:       func(int) int64 { return cutoff },
	}
}

// NewLuby returns the classic Luby restart strategy with base cutoff
// t0: search i runs t0 * Luby(i) iterations.
func NewLuby(t0 int64) *Sequential {
	if t0 <= 0 {
		panic("restart: luby base cutoff must be positive")
	}
	return &Sequential{
		StrategyName: "luby",
		Cutoff:       func(i int) int64 { return t0 * Luby(i) },
	}
}

// NewExponential returns the exponentially increasing cutoff strategy
// t0 * z^k for k = 0, 1, 2, ... (Section 5.1).
func NewExponential(t0 int64, z float64) *Sequential {
	if t0 <= 0 || z <= 1 {
		panic("restart: exponential strategy requires t0 > 0 and z > 1")
	}
	return &Sequential{
		StrategyName: fmt.Sprintf("exp(z=%g)", z),
		Cutoff: func(i int) int64 {
			c := float64(t0)
			for k := 1; k < i; k++ {
				c *= z
				if c > 1e18 {
					break
				}
			}
			return int64(c)
		},
	}
}

// NewInnerOuter returns the inner-outer geometric strategy of PicoSAT:
// cutoffs t0 * z^k with k = 0, 1, 0, 1, 2, 0, 1, 2, 3, ...
func NewInnerOuter(t0 int64, z float64) *Sequential {
	if t0 <= 0 || z <= 1 {
		panic("restart: inner-outer strategy requires t0 > 0 and z > 1")
	}
	return &Sequential{
		StrategyName: fmt.Sprintf("innerouter(z=%g)", z),
		Cutoff: func(i int) int64 {
			k := innerOuterK(i)
			c := float64(t0)
			for j := 0; j < k; j++ {
				c *= z
				if c > 1e18 {
					break
				}
			}
			return int64(c)
		},
	}
}

// innerOuterK maps the 1-based search index to the exponent sequence
// 0, 1, 0, 1, 2, 0, 1, 2, 3, ...: round r (1-based) consists of the
// exponents 0..r.
func innerOuterK(i int) int {
	i-- // 0-based position
	r := 1
	for {
		if i < r+1 {
			return i
		}
		i -= r + 1
		r++
	}
}

// Luby returns the i-th element (1-based) of the Luby sequence
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func Luby(i int) int64 {
	if i < 1 {
		panic("restart: Luby index must be >= 1")
	}
	// If i == 2^k - 1 the value is 2^(k-1); otherwise recurse on the
	// position within the trailing copy of the previous block.
	for k := 1; ; k++ {
		if i == 1<<k-1 {
			return int64(1) << (k - 1)
		}
		if i < 1<<k-1 {
			return Luby(i - (1<<(k-1) - 1))
		}
	}
}
