package restart

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultT0 is the default base cutoff, in iterations, for the Luby
// and tree strategies. The paper does not fix t0; anything small
// relative to typical synthesis times works because the Luby schedule
// rescales itself, and this default keeps the doubling tree's memory
// footprint modest at our budgets.
const DefaultT0 = 1000

// New constructs a strategy from a textual spec. Recognized forms:
//
//	naive
//	luby | luby:<t0>
//	adaptive | adaptive:<t0> | adaptive:<t0>:<maxSearches> | adaptive:<t0>:<maxSearches>:<workers>
//	pluby | pluby:<t0> | pluby:<t0>:<maxSearches> | pluby:<t0>:<maxSearches>:<workers>
//	fixed:<cutoff>
//	exp:<t0>:<z>
//	innerouter:<t0>:<z>
//
// maxSearches 0 means unlimited; workers 0 or 1 selects the
// sequential executor, larger values the concurrent one (the Results
// are identical either way; see Tree.Workers).
//
// It returns an error for unknown names or malformed parameters.
func New(spec string) (Strategy, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	argInt := func(i int, def int64) (int64, error) {
		if len(parts) <= i {
			return def, nil
		}
		v, err := strconv.ParseInt(parts[i], 10, 64)
		if err == nil && v <= 0 {
			return 0, fmt.Errorf("must be positive, got %d", v)
		}
		return v, err
	}
	argNonNeg := func(i int, def int64) (int64, error) {
		if len(parts) <= i {
			return def, nil
		}
		v, err := strconv.ParseInt(parts[i], 10, 64)
		if err == nil && v < 0 {
			return 0, fmt.Errorf("must be non-negative, got %d", v)
		}
		return v, err
	}
	argFloat := func(i int, def float64) (float64, error) {
		if len(parts) <= i {
			return def, nil
		}
		v, err := strconv.ParseFloat(parts[i], 64)
		if err == nil && v <= 1 {
			return 0, fmt.Errorf("must be > 1, got %g", v)
		}
		return v, err
	}
	switch name {
	case "naive":
		return Naive{}, nil
	case "luby":
		t0, err := argInt(1, DefaultT0)
		if err != nil {
			return nil, fmt.Errorf("restart: bad t0 in %q: %v", spec, err)
		}
		return NewLuby(t0), nil
	case "adaptive", "pluby":
		t0, err := argInt(1, DefaultT0)
		if err != nil {
			return nil, fmt.Errorf("restart: bad t0 in %q: %v", spec, err)
		}
		max, err := argNonNeg(2, 0)
		if err != nil {
			return nil, fmt.Errorf("restart: bad search cap in %q: %v", spec, err)
		}
		workers, err := argNonNeg(3, 0)
		if err != nil {
			return nil, fmt.Errorf("restart: bad worker count in %q: %v", spec, err)
		}
		return &Tree{
			T0:          t0,
			Adaptive:    name == "adaptive",
			MaxSearches: int(max),
			Workers:     int(workers),
		}, nil
	case "fixed":
		if len(parts) < 2 {
			return nil, fmt.Errorf("restart: fixed requires a cutoff, e.g. fixed:10000")
		}
		cut, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || cut <= 0 {
			return nil, fmt.Errorf("restart: bad cutoff in %q", spec)
		}
		return NewFixed(cut), nil
	case "exp":
		t0, err := argInt(1, DefaultT0)
		if err != nil {
			return nil, fmt.Errorf("restart: bad t0 in %q: %v", spec, err)
		}
		z, err := argFloat(2, 2)
		if err != nil {
			return nil, fmt.Errorf("restart: bad z in %q: %v", spec, err)
		}
		return NewExponential(t0, z), nil
	case "innerouter":
		t0, err := argInt(1, DefaultT0)
		if err != nil {
			return nil, fmt.Errorf("restart: bad t0 in %q: %v", spec, err)
		}
		z, err := argFloat(2, 2)
		if err != nil {
			return nil, fmt.Errorf("restart: bad z in %q: %v", spec, err)
		}
		return NewInnerOuter(t0, z), nil
	}
	return nil, fmt.Errorf("restart: unknown strategy %q", name)
}

// MustNew is New for tests and internal tables; it panics on error.
func MustNew(spec string) Strategy {
	s, err := New(spec)
	if err != nil {
		panic(err)
	}
	return s
}
