package restart

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DefaultT0 is the default base cutoff, in iterations, for the Luby
// and tree strategies. The paper does not fix t0; anything small
// relative to typical synthesis times works because the Luby schedule
// rescales itself, and this default keeps the doubling tree's memory
// footprint modest at our budgets.
const DefaultT0 = 1000

// ErrBadSpec tags every strategy-spec parse error returned by New, so
// callers can distinguish "the user wrote a bad spec" from other
// failures with errors.Is(err, ErrBadSpec) and map it to an input
// error (the HTTP API returns 400, the CLIs print a clean message).
var ErrBadSpec = errors.New("bad restart strategy spec")

// New constructs a strategy from a textual spec. Recognized forms:
//
//	naive
//	luby | luby:<t0>
//	adaptive | adaptive:<t0> | adaptive:<t0>:<maxSearches> | adaptive:<t0>:<maxSearches>:<workers>
//	pluby | pluby:<t0> | pluby:<t0>:<maxSearches> | pluby:<t0>:<maxSearches>:<workers>
//	fixed:<cutoff>
//	exp | exp:<t0> | exp:<t0>:<z>
//	innerouter | innerouter:<t0> | innerouter:<t0>:<z>
//
// maxSearches 0 means unlimited; workers 0 or 1 selects the
// sequential executor, larger values the concurrent one (the Results
// are identical either way; see Tree.Workers).
//
// Malformed specs — unknown names, empty fields (trailing or doubled
// colons), surplus fields, out-of-range values — return an error
// wrapping ErrBadSpec; New never panics and never silently ignores
// part of a spec.
func New(spec string) (Strategy, error) {
	p, err := newParser(spec)
	if err != nil {
		return nil, err
	}
	switch p.name {
	case "naive":
		return p.done(Naive{})
	case "luby":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return nil, err
		}
		return p.done(NewLuby(t0))
	case "adaptive", "pluby":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return nil, err
		}
		max, err := p.nonNegInt("search cap", 0)
		if err != nil {
			return nil, err
		}
		workers, err := p.nonNegInt("worker count", 0)
		if err != nil {
			return nil, err
		}
		return p.done(&Tree{
			T0:          t0,
			Adaptive:    p.name == "adaptive",
			MaxSearches: int(max),
			Workers:     int(workers),
		})
	case "fixed":
		if len(p.args) == 0 {
			return nil, fmt.Errorf("restart: %w: %q: fixed requires a cutoff, e.g. fixed:10000", ErrBadSpec, spec)
		}
		cut, err := p.posInt("cutoff", 0)
		if err != nil {
			return nil, err
		}
		return p.done(NewFixed(cut))
	case "exp", "innerouter":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return nil, err
		}
		z, err := p.growthFloat("z", 2)
		if err != nil {
			return nil, err
		}
		if p.name == "exp" {
			return p.done(NewExponential(t0, z))
		}
		return p.done(NewInnerOuter(t0, z))
	}
	return nil, fmt.Errorf("restart: %w: unknown strategy %q", ErrBadSpec, p.name)
}

// specParser consumes the colon-separated fields of a strategy spec
// in order, validating each and rejecting leftovers at the end.
type specParser struct {
	spec string
	name string
	args []string
	next int
}

func newParser(spec string) (*specParser, error) {
	parts := strings.Split(spec, ":")
	for i, f := range parts {
		if f == "" {
			if i == 0 {
				return nil, fmt.Errorf("restart: %w: empty strategy name in %q", ErrBadSpec, spec)
			}
			return nil, fmt.Errorf("restart: %w: empty field %d in %q (trailing or doubled colon?)", ErrBadSpec, i, spec)
		}
	}
	return &specParser{spec: spec, name: parts[0], args: parts[1:]}, nil
}

// take returns the next argument field, or ok=false when the spec
// supplied fewer fields (the parameter's default applies).
func (p *specParser) take() (string, bool) {
	if p.next >= len(p.args) {
		return "", false
	}
	f := p.args[p.next]
	p.next++
	return f, true
}

func (p *specParser) posInt(what string, def int64) (int64, error) {
	f, ok := p.take()
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseInt(f, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("restart: %w: bad %s %q in %q: not an integer", ErrBadSpec, what, f, p.spec)
	}
	if v <= 0 {
		return 0, fmt.Errorf("restart: %w: bad %s in %q: must be positive, got %d", ErrBadSpec, what, p.spec, v)
	}
	return v, nil
}

func (p *specParser) nonNegInt(what string, def int64) (int64, error) {
	f, ok := p.take()
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseInt(f, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("restart: %w: bad %s %q in %q: not an integer", ErrBadSpec, what, f, p.spec)
	}
	if v < 0 {
		return 0, fmt.Errorf("restart: %w: bad %s in %q: must be non-negative, got %d", ErrBadSpec, what, p.spec, v)
	}
	return v, nil
}

func (p *specParser) growthFloat(what string, def float64) (float64, error) {
	f, ok := p.take()
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("restart: %w: bad %s %q in %q: not a number", ErrBadSpec, what, f, p.spec)
	}
	if v <= 1 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("restart: %w: bad %s in %q: must be a finite value > 1, got %g", ErrBadSpec, what, p.spec, v)
	}
	return v, nil
}

// done rejects surplus fields and returns the built strategy.
func (p *specParser) done(s Strategy) (Strategy, error) {
	if p.next < len(p.args) {
		return nil, fmt.Errorf("restart: %w: %q: surplus field %q (%s takes at most %d parameters)",
			ErrBadSpec, p.spec, p.args[p.next], p.name, p.next)
	}
	return s, nil
}

// MustNew is New for tests and internal tables; it panics on error.
func MustNew(spec string) Strategy {
	s, err := New(spec)
	if err != nil {
		panic(err)
	}
	return s
}
