package restart

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DefaultT0 is the default base cutoff, in iterations, for the Luby
// and tree strategies. The paper does not fix t0; anything small
// relative to typical synthesis times works because the Luby schedule
// rescales itself, and this default keeps the doubling tree's memory
// footprint modest at our budgets.
const DefaultT0 = 1000

// ErrBadSpec tags every strategy-spec parse error returned by New, so
// callers can distinguish "the user wrote a bad spec" from other
// failures with errors.Is(err, ErrBadSpec) and map it to an input
// error (the HTTP API returns 400, the CLIs print a clean message).
var ErrBadSpec = errors.New("bad restart strategy spec")

// New constructs a strategy from a textual spec. Recognized forms:
//
//	naive
//	luby | luby:<t0>
//	adaptive | adaptive:<t0> | adaptive:<t0>:<maxSearches> | adaptive:<t0>:<maxSearches>:<workers>
//	pluby | pluby:<t0> | pluby:<t0>:<maxSearches> | pluby:<t0>:<maxSearches>:<workers>
//	fixed:<cutoff>
//	exp | exp:<t0> | exp:<t0>:<z>
//	innerouter | innerouter:<t0> | innerouter:<t0>:<z>
//
// maxSearches 0 means unlimited; workers 0 or 1 selects the
// sequential executor, larger values the concurrent one (the Results
// are identical either way; see Tree.Workers).
//
// Malformed specs — unknown names, empty fields (trailing or doubled
// colons), surplus fields, out-of-range values — return an error
// wrapping ErrBadSpec; New never panics and never silently ignores
// part of a spec.
func New(spec string) (Strategy, error) {
	p, err := newParser(spec)
	if err != nil {
		return nil, err
	}
	switch p.name {
	case "naive":
		return p.done(Naive{})
	case "luby":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return nil, err
		}
		return p.done(NewLuby(t0))
	case "adaptive", "pluby":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return nil, err
		}
		max, err := p.nonNegInt("search cap", 0)
		if err != nil {
			return nil, err
		}
		workers, err := p.nonNegInt("worker count", 0)
		if err != nil {
			return nil, err
		}
		return p.done(&Tree{
			T0:          t0,
			Adaptive:    p.name == "adaptive",
			MaxSearches: int(max),
			Workers:     int(workers),
		})
	case "fixed":
		if len(p.args) == 0 {
			return nil, fmt.Errorf("restart: %w: %q: fixed requires a cutoff, e.g. fixed:10000", ErrBadSpec, spec)
		}
		cut, err := p.posInt("cutoff", 0)
		if err != nil {
			return nil, err
		}
		return p.done(NewFixed(cut))
	case "exp", "innerouter":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return nil, err
		}
		z, err := p.growthFloat("z", 2)
		if err != nil {
			return nil, err
		}
		if p.name == "exp" {
			return p.done(NewExponential(t0, z))
		}
		return p.done(NewInnerOuter(t0, z))
	}
	return nil, fmt.Errorf("restart: %w: unknown strategy %q", ErrBadSpec, p.name)
}

// specParser consumes the colon-separated fields of a strategy spec
// in order, validating each and rejecting leftovers at the end.
type specParser struct {
	spec string
	name string
	args []string
	next int
}

func newParser(spec string) (*specParser, error) {
	parts := strings.Split(spec, ":")
	for i, f := range parts {
		if f == "" {
			if i == 0 {
				return nil, fmt.Errorf("restart: %w: empty strategy name in %q", ErrBadSpec, spec)
			}
			return nil, fmt.Errorf("restart: %w: empty field %d in %q (trailing or doubled colon?)", ErrBadSpec, i, spec)
		}
	}
	return &specParser{spec: spec, name: parts[0], args: parts[1:]}, nil
}

// take returns the next argument field, or ok=false when the spec
// supplied fewer fields (the parameter's default applies).
func (p *specParser) take() (string, bool) {
	if p.next >= len(p.args) {
		return "", false
	}
	f := p.args[p.next]
	p.next++
	return f, true
}

func (p *specParser) posInt(what string, def int64) (int64, error) {
	f, ok := p.take()
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseInt(f, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("restart: %w: bad %s %q in %q: not an integer", ErrBadSpec, what, f, p.spec)
	}
	if v <= 0 {
		return 0, fmt.Errorf("restart: %w: bad %s in %q: must be positive, got %d", ErrBadSpec, what, p.spec, v)
	}
	return v, nil
}

func (p *specParser) nonNegInt(what string, def int64) (int64, error) {
	f, ok := p.take()
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseInt(f, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("restart: %w: bad %s %q in %q: not an integer", ErrBadSpec, what, f, p.spec)
	}
	if v < 0 {
		return 0, fmt.Errorf("restart: %w: bad %s in %q: must be non-negative, got %d", ErrBadSpec, what, p.spec, v)
	}
	return v, nil
}

func (p *specParser) growthFloat(what string, def float64) (float64, error) {
	f, ok := p.take()
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("restart: %w: bad %s %q in %q: not a number", ErrBadSpec, what, f, p.spec)
	}
	if v <= 1 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("restart: %w: bad %s in %q: must be a finite value > 1, got %g", ErrBadSpec, what, p.spec, v)
	}
	return v, nil
}

// done rejects surplus fields and returns the built strategy.
func (p *specParser) done(s Strategy) (Strategy, error) {
	if p.next < len(p.args) {
		return nil, fmt.Errorf("restart: %w: %q: surplus field %q (%s takes at most %d parameters)",
			ErrBadSpec, p.spec, p.args[p.next], p.name, p.next)
	}
	return s, nil
}

// CanonicalSpec maps a strategy spec to a canonical textual form:
// defaults are made explicit and parameters that cannot change results
// are dropped. Two specs with the same canonical form configure
// runs that produce identical Results, so services may use the
// canonical form in semantic cache keys where the verbatim spec would
// fragment the cache:
//
//	"adaptive", "adaptive:1000", "adaptive:1000:0", and
//	"adaptive:1000:0:8" all canonicalize to "adaptive:1000:0"
//
// (the workers field only selects the concurrent tree executor, which
// reproduces the sequential schedule bit for bit). Malformed specs
// return the same ErrBadSpec-wrapped errors as New.
func CanonicalSpec(spec string) (string, error) {
	p, err := newParser(spec)
	if err != nil {
		return "", err
	}
	check := func(s string) (string, error) {
		if p.next < len(p.args) {
			return "", fmt.Errorf("restart: %w: %q: surplus field %q (%s takes at most %d parameters)",
				ErrBadSpec, p.spec, p.args[p.next], p.name, p.next)
		}
		return s, nil
	}
	switch p.name {
	case "naive":
		return check("naive")
	case "luby":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return "", err
		}
		return check(fmt.Sprintf("luby:%d", t0))
	case "adaptive", "pluby":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return "", err
		}
		max, err := p.nonNegInt("search cap", 0)
		if err != nil {
			return "", err
		}
		// The workers field is parsed for validation but dropped: it
		// never changes results.
		if _, err := p.nonNegInt("worker count", 0); err != nil {
			return "", err
		}
		return check(fmt.Sprintf("%s:%d:%d", p.name, t0, max))
	case "fixed":
		if len(p.args) == 0 {
			return "", fmt.Errorf("restart: %w: %q: fixed requires a cutoff, e.g. fixed:10000", ErrBadSpec, spec)
		}
		cut, err := p.posInt("cutoff", 0)
		if err != nil {
			return "", err
		}
		return check(fmt.Sprintf("fixed:%d", cut))
	case "exp", "innerouter":
		t0, err := p.posInt("t0", DefaultT0)
		if err != nil {
			return "", err
		}
		z, err := p.growthFloat("z", 2)
		if err != nil {
			return "", err
		}
		return check(fmt.Sprintf("%s:%d:%g", p.name, t0, z))
	}
	return "", fmt.Errorf("restart: %w: unknown strategy %q", ErrBadSpec, p.name)
}

// MustNew is New for tests and internal tables; it panics on error.
func MustNew(spec string) Strategy {
	s, err := New(spec)
	if err != nil {
		panic(err)
	}
	return s
}
