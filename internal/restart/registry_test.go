package restart

import (
	"errors"
	"strings"
	"testing"
)

func TestNewValidSpecs(t *testing.T) {
	tests := []struct {
		spec string
		name string // expected Strategy.Name()
		chk  func(t *testing.T, s Strategy)
	}{
		{spec: "naive", name: "naive"},
		{spec: "luby", name: "luby"},
		{spec: "luby:500", name: "luby"},
		{spec: "adaptive", name: "adaptive", chk: func(t *testing.T, s Strategy) {
			tr := s.(*Tree)
			if tr.T0 != DefaultT0 || !tr.Adaptive || tr.MaxSearches != 0 || tr.Workers != 0 {
				t.Errorf("adaptive defaults: %+v", tr)
			}
		}},
		{spec: "adaptive:250", name: "adaptive", chk: func(t *testing.T, s Strategy) {
			if tr := s.(*Tree); tr.T0 != 250 {
				t.Errorf("T0 = %d, want 250", tr.T0)
			}
		}},
		{spec: "adaptive:250:64", name: "adaptive", chk: func(t *testing.T, s Strategy) {
			if tr := s.(*Tree); tr.MaxSearches != 64 {
				t.Errorf("MaxSearches = %d, want 64", tr.MaxSearches)
			}
		}},
		{spec: "adaptive:250:0:8", name: "adaptive", chk: func(t *testing.T, s Strategy) {
			tr := s.(*Tree)
			if tr.MaxSearches != 0 || tr.Workers != 8 {
				t.Errorf("cap/workers: %+v", tr)
			}
		}},
		{spec: "pluby:100:10:2", name: "pluby", chk: func(t *testing.T, s Strategy) {
			if tr := s.(*Tree); tr.Adaptive {
				t.Error("pluby spec produced an adaptive tree")
			}
		}},
		{spec: "fixed:10000", name: "fixed(10000)"},
		{spec: "exp", name: "exp(z=2)"},
		{spec: "exp:100", name: "exp(z=2)"},
		{spec: "exp:100:1.5", name: "exp(z=1.5)"},
		{spec: "innerouter:100:3", name: "innerouter(z=3)"},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			s, err := New(tt.spec)
			if err != nil {
				t.Fatalf("New(%q): %v", tt.spec, err)
			}
			if s.Name() != tt.name {
				t.Errorf("Name() = %q, want %q", s.Name(), tt.name)
			}
			if tt.chk != nil {
				tt.chk(t, s)
			}
		})
	}
}

func TestNewMalformedSpecs(t *testing.T) {
	tests := []struct {
		spec string
		frag string // substring expected in the error message
	}{
		// Unknown names and empty fields.
		{"", "empty strategy name"},
		{"bogus", "unknown strategy"},
		{":100", "empty strategy name"},
		{"adaptive:", "trailing or doubled colon"},
		{"adaptive::4", "trailing or doubled colon"},
		{"luby:1000:", "trailing or doubled colon"},
		{"fixed:", "trailing or doubled colon"},
		// Missing required fields.
		{"fixed", "requires a cutoff"},
		// Non-numeric and out-of-range values.
		{"luby:abc", "not an integer"},
		{"luby:0", "must be positive"},
		{"luby:-3", "must be positive"},
		{"adaptive:-1", "must be positive"},
		{"adaptive:100:-1", "must be non-negative"},
		{"adaptive:100:0:-2", "must be non-negative"}, // negative workers
		{"adaptive:100:0:two", "not an integer"},
		{"fixed:0", "must be positive"},
		{"fixed:-5", "must be positive"},
		{"fixed:1e6", "not an integer"},
		{"exp:100:1", "must be a finite value > 1"},
		{"exp:100:0.5", "must be a finite value > 1"},
		{"exp:100:+Inf", "must be a finite value > 1"},
		{"exp:100:NaN", "must be a finite value > 1"},
		{"innerouter:100:z", "not a number"},
		{"luby:99999999999999999999", "not an integer"}, // int64 overflow
		// Surplus fields (previously ignored silently).
		{"naive:5", "surplus field"},
		{"luby:1000:7", "surplus field"},
		{"fixed:100:100", "surplus field"},
		{"exp:100:2:3", "surplus field"},
		{"innerouter:100:2:3", "surplus field"},
		{"adaptive:100:0:4:9", "surplus field"},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("New(%q) panicked: %v", tt.spec, p)
				}
			}()
			s, err := New(tt.spec)
			if err == nil {
				t.Fatalf("New(%q) = %v (%s), want error", tt.spec, s, s.Name())
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Errorf("New(%q) error does not wrap ErrBadSpec: %v", tt.spec, err)
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("New(%q) error %q does not mention %q", tt.spec, err, tt.frag)
			}
		})
	}
}
