package restart

import (
	"context"
	"fmt"
	"sync"

	"stochsyn/internal/search"
)

// ParallelNaive runs Workers independent naive searches concurrently,
// drawing iteration grants from a shared budget pool so the total
// work never exceeds the budget. It is the multi-core counterpart of
// Naive: no restarts, first finisher wins.
//
// Unlike the tree strategies (whose concurrent executor reproduces
// the sequential schedule bit for bit), which search wins here
// depends on goroutine scheduling; iteration accounting and
// correctness do not. Result.Searches reports the number of searches
// that actually consumed budget, which can be less than Workers when
// the budget is smaller than Workers grant chunks.
type ParallelNaive struct {
	// Workers is the number of concurrent searches. Values <= 0 are
	// rejected by Run (callers decide the hardware mapping).
	Workers int
	// Chunk is the grant size drawn from the pool per request
	// (default 8192). Smaller chunks tighten the budget split across
	// workers at the price of more pool contention.
	Chunk int64
}

// Name implements Strategy.
func (p *ParallelNaive) Name() string { return "pnaive" }

// Run implements Strategy.
func (p *ParallelNaive) Run(f search.Factory, budget int64) Result {
	return p.RunContext(context.Background(), f, budget)
}

// RunContext implements Strategy. Cancelling the context closes the
// shared budget pool, which wakes any blocked workers and denies
// further grants; workers mid-grant observe the cancellation through
// their search's own context or at the next grant boundary. The
// Result counts exactly the iterations that were executed.
func (p *ParallelNaive) RunContext(ctx context.Context, f search.Factory, budget int64) Result {
	if p.Workers <= 0 {
		panic(fmt.Sprintf("restart: ParallelNaive requires positive Workers, got %d", p.Workers))
	}
	chunk := p.Chunk
	if chunk <= 0 {
		chunk = 8192
	}
	pool := newBudgetPool(budget)
	stop := context.AfterFunc(ctx, pool.close)
	defer stop()

	type outcome struct {
		spent int64
		won   bool
		s     search.Search
	}
	outcomes := make([]outcome, p.Workers)

	var wg sync.WaitGroup
	wg.Add(p.Workers)
	for w := 0; w < p.Workers; w++ {
		go func(w int) {
			defer wg.Done()
			run := f(uint64(w))
			for ctx.Err() == nil {
				grant := pool.acquire(chunk)
				if grant <= 0 {
					return
				}
				used, done := run.Step(grant)
				outcomes[w].spent += used
				pool.release(grant - used)
				if done {
					outcomes[w].won = true
					outcomes[w].s = run
					pool.close()
					return
				}
				if used < grant {
					// An early unfinished return means the search saw
					// its context cancelled; stop drawing grants.
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var res Result
	for _, o := range outcomes {
		res.Iterations += o.spent
		if o.spent > 0 {
			res.Searches++
		}
		if o.won && res.Winner == nil {
			res.Solved = true
			res.Winner = o.s
		}
	}
	if !res.Solved && ctx.Err() != nil {
		res.Cancelled = true
	}
	return res
}

// budgetPool is a shared iteration budget for concurrent searches.
// Unlike a bare atomic counter, it tracks how many grants are
// outstanding: a worker that finds the pool empty while grants are
// still out blocks instead of exiting, because a partially consumed
// grant may yet be returned. This prevents budget stranding — with a
// plain counter, iterations released after the last hungry worker
// gave up were never spent.
type budgetPool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	remaining   int64
	outstanding int
	closed      bool
}

func newBudgetPool(budget int64) *budgetPool {
	p := &budgetPool{remaining: budget}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire returns a grant of up to max iterations, blocking while the
// pool is empty but grants are outstanding. It returns 0 once the
// budget is definitively exhausted or the pool is closed.
func (p *budgetPool) acquire(max int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && p.remaining <= 0 && p.outstanding > 0 {
		p.cond.Wait()
	}
	if p.closed || p.remaining <= 0 {
		return 0
	}
	grant := max
	if grant > p.remaining {
		grant = p.remaining
	}
	p.remaining -= grant
	p.outstanding++
	return grant
}

// release returns the unused part of a grant and retires it.
func (p *budgetPool) release(unused int64) {
	p.mu.Lock()
	p.outstanding--
	if unused > 0 {
		p.remaining += unused
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// close drains the pool, waking all waiters; used when a search has
// finished and the remaining budget is no longer needed.
func (p *budgetPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}
