package restart

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"stochsyn/internal/search"
)

// fakeSearch finishes after a predetermined number of iterations,
// with a cost schedule that can be scripted. It implements
// search.Search for strategy unit tests.
type fakeSearch struct {
	finishAt int64 // total iterations needed to finish (-1: never)
	ran      int64
	cost     float64
}

func (f *fakeSearch) Step(budget int64) (int64, bool) {
	if f.finishAt >= 0 && f.ran >= f.finishAt {
		return 0, true
	}
	remaining := int64(1 << 62)
	if f.finishAt >= 0 {
		remaining = f.finishAt - f.ran
	}
	if budget < remaining {
		f.ran += budget
		return budget, false
	}
	f.ran += remaining
	return remaining, true
}

func (f *fakeSearch) Cost() float64 {
	if f.finishAt >= 0 && f.ran >= f.finishAt {
		return 0
	}
	return f.cost
}

// fixedFactory returns searches whose finish times cycle through the
// given schedule (id indexes it).
func fixedFactory(times ...int64) search.Factory {
	return func(id uint64) search.Search {
		return &fakeSearch{finishAt: times[int(id)%len(times)], cost: 10}
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1}
	for i, w := range want {
		if got := Luby(i + 1); got != w {
			t.Errorf("Luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestLubyPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Luby(0)")
		}
	}()
	Luby(0)
}

func TestPropertyLubyStructure(t *testing.T) {
	// Each element is a power of two, and the i-th element equals
	// 2^(k-1) exactly when i == 2^k - 1.
	f := func(raw uint16) bool {
		i := 1 + int(raw)%4000
		v := Luby(i)
		return v > 0 && v&(v-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Prefix sums property: among the first 2^k - 1 entries, the total
	// time is k * 2^(k-1).
	for k := 1; k <= 8; k++ {
		n := 1<<k - 1
		var sum int64
		for i := 1; i <= n; i++ {
			sum += Luby(i)
		}
		if want := int64(k) << (k - 1); sum != want {
			t.Errorf("sum of first %d Luby entries = %d, want %d", n, sum, want)
		}
	}
}

func TestNaive(t *testing.T) {
	res := Naive{}.Run(fixedFactory(500), 10_000)
	if !res.Solved || res.Iterations != 500 || res.Searches != 1 {
		t.Errorf("naive: %+v", res)
	}
	// Budget exhaustion.
	res = Naive{}.Run(fixedFactory(50_000), 10_000)
	if res.Solved || res.Iterations != 10_000 {
		t.Errorf("naive timeout: %+v", res)
	}
}

func TestFixedCutoff(t *testing.T) {
	// Searches finish at 100 except every third one at 5; cutoff 10
	// only lets the 5s finish.
	f := fixedFactory(100, 100, 5)
	res := NewFixed(10).Run(f, 100_000)
	if !res.Solved {
		t.Fatal("fixed cutoff never solved")
	}
	// Two failed 10-iteration runs plus one 5-iteration success.
	if res.Iterations != 25 || res.Searches != 3 {
		t.Errorf("fixed: %+v", res)
	}
}

func TestFixedBudgetClipsLastRun(t *testing.T) {
	res := NewFixed(100).Run(fixedFactory(-1), 250)
	if res.Solved {
		t.Fatal("unsolvable factory solved")
	}
	if res.Iterations != 250 {
		t.Errorf("consumed %d, want exactly the 250 budget", res.Iterations)
	}
	if res.Searches != 3 { // 100 + 100 + 50
		t.Errorf("ran %d searches, want 3", res.Searches)
	}
}

func TestLubyStrategySchedule(t *testing.T) {
	// With t0 = 10 and searches that never finish, cutoffs follow
	// 10*Luby: 10, 10, 20, 10, 10, 20, 40, ...
	res := NewLuby(10).Run(fixedFactory(-1), 120)
	if res.Solved {
		t.Fatal("unsolvable factory solved")
	}
	if res.Iterations != 120 {
		t.Errorf("consumed %d of 120", res.Iterations)
	}
	// 10+10+20+10+10+20+40 = 120 -> 7 searches.
	if res.Searches != 7 {
		t.Errorf("ran %d searches, want 7", res.Searches)
	}
}

func TestLubySolvesFastOutliers(t *testing.T) {
	// Most runs need 10_000; one in four finishes in 3.
	f := fixedFactory(10_000, 10_000, 10_000, 3)
	res := NewLuby(4).Run(f, 100_000)
	if !res.Solved {
		t.Fatal("luby never hit the fast search")
	}
	if res.Iterations > 100 {
		t.Errorf("luby used %d iterations, expected a quick catch", res.Iterations)
	}
}

func TestExponential(t *testing.T) {
	res := NewExponential(10, 2).Run(fixedFactory(-1), 150)
	// Cutoffs 10, 20, 40, 80: consumed 10+20+40+80=150.
	if res.Searches != 4 || res.Iterations != 150 {
		t.Errorf("exp: %+v", res)
	}
}

func TestInnerOuterK(t *testing.T) {
	want := []int{0, 1, 0, 1, 2, 0, 1, 2, 3, 0, 1, 2, 3, 4}
	for i, w := range want {
		if got := innerOuterK(i + 1); got != w {
			t.Errorf("innerOuterK(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestInnerOuterStrategy(t *testing.T) {
	res := NewInnerOuter(10, 2).Run(fixedFactory(-1), 100)
	// Cutoffs 10, 20, 10, 20, 40: 100 consumed in 5 searches.
	if res.Searches != 5 || res.Iterations != 100 {
		t.Errorf("innerouter: %+v", res)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"fixed":      func() { NewFixed(0) },
		"luby":       func() { NewLuby(0) },
		"exp-t0":     func() { NewExponential(0, 2) },
		"exp-z":      func() { NewExponential(10, 1) },
		"innerouter": func() { NewInnerOuter(0, 2) },
		"tree":       func() { (&Tree{T0: 0}).Run(fixedFactory(1), 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRegistry(t *testing.T) {
	for spec, wantName := range map[string]string{
		"naive":           "naive",
		"luby":            "luby",
		"luby:500":        "luby",
		"adaptive":        "adaptive",
		"adaptive:200":    "adaptive",
		"pluby":           "pluby",
		"fixed:1000":      "fixed(1000)",
		"exp:10:2":        "exp(z=2)",
		"innerouter:10:2": "innerouter(z=2)",
	} {
		s, err := New(spec)
		if err != nil {
			t.Errorf("New(%q): %v", spec, err)
			continue
		}
		if s.Name() != wantName {
			t.Errorf("New(%q).Name() = %q, want %q", spec, s.Name(), wantName)
		}
	}
	for _, bad := range []string{"", "bogus", "fixed", "fixed:x", "fixed:-1", "luby:x", "exp:10:0.5"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) succeeded", bad)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew("bogus")
}

func TestPropertySequentialNeverExceedsBudget(t *testing.T) {
	f := func(seed uint64, budgetRaw uint16) bool {
		budget := int64(budgetRaw)%5000 + 1
		rng := rand.New(rand.NewPCG(seed, 3))
		factory := func(id uint64) search.Search {
			return &fakeSearch{finishAt: int64(rng.IntN(2000)) + 1, cost: 5}
		}
		for _, s := range []Strategy{Naive{}, NewLuby(7), NewFixed(13), NewExponential(5, 2), NewInnerOuter(5, 2)} {
			res := s.Run(factory, budget)
			if res.Iterations > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
