package restart

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stochsyn/internal/search"
)

// This file implements the multi-core executor for the doubling-tree
// strategies (parallel Luby and adaptive). The sequential Tree.Run in
// adaptive.go is kept unchanged as the reference oracle; the executor
// is required to produce a bit-identical Result for any deterministic
// factory, and treeexec_test.go enforces that seed for seed.
//
// # Why the schedule is deterministic
//
// The doubling pass of Figures 8/9 visits the tree in depth-first
// post-order. Two observations make a deterministic parallel execution
// possible:
//
//  1. The iteration grant of every visit is positional: it depends
//     only on the tree shape, node labels, and the remaining budget —
//     never on search costs. Adaptive swaps exchange the searches
//     attached to two nodes, not the nodes' labels. So the entire
//     pass schedule (which node steps, for how many iterations, in
//     what post-order position, and which fresh leaves are created
//     with which factory ids) can be planned up front on one
//     goroutine, before any search steps.
//
//  2. Search state only flows between subtrees at the post-order swap
//     points. A node's own run uses whatever search sits at the node
//     after all of its children's swaps, and a child's swap decision
//     reads the parent's current search; sibling subtrees are
//     otherwise independent. Executing sibling subtrees concurrently
//     and applying the parent swaps at the join point, in child
//     order, therefore reproduces the sequential interleaving
//     exactly.
//
// Early solves are reconciled by post-order position: workers keep a
// monotonically decreasing "first finished step" index, steps beyond
// it are skipped, and the Result is reconstructed from the earliest
// finishing step — the one the sequential oracle would have stopped
// at. Any work executed past that point is speculation; it burns
// wall-clock on otherwise idle cores but never leaks into the Result
// (speculative iterations are reported separately in ExecStats).
//
// The executor assumes the search.Search contract that Step consumes
// its full budget unless the search finishes; both search.Run and
// markov.Walk satisfy it. It additionally requires what the
// sequential oracle already requires for determinism: the factory
// must be deterministic in the id it is given.

// ExecStats reports counters from one concurrent tree execution,
// surfaced through cmd/bench. All iteration counts are in the paper's
// search-loop iteration unit.
type ExecStats struct {
	// Workers is the size of the worker pool used.
	Workers int
	// Passes is the number of doubling passes executed, counting the
	// initial root run as the first pass.
	Passes int
	// SearchesLive is the number of searches alive in the tree at
	// exit. On an early solve this can exceed Result.Searches: leaves
	// planned after the winning step are speculative.
	SearchesLive int
	// Steps and Skipped count Step dispatches actually executed and
	// steps skipped because an earlier post-order step had already
	// finished.
	Steps, Skipped int64
	// BudgetSpent is the number of iterations actually consumed by
	// Step calls, including speculative work past the winning step.
	BudgetSpent int64
	// BudgetStranded is the portion of the budget never consumed
	// (nonzero only when a search finishes early).
	BudgetStranded int64
	// Speculated is the part of BudgetSpent that the sequential
	// oracle would not have run (BudgetSpent - Result.Iterations).
	Speculated int64
	// Swaps is the number of adaptive parent swaps performed.
	Swaps int64
	// Utilization is the busy fraction of the worker pool over the
	// run's wall-clock time, in [0, 1].
	Utilization float64
}

// planStep is one scheduled Step call of a doubling pass. The plan
// fields are written single-threaded before execution; the exec
// fields are written by the one goroutine that runs the step and read
// only after the pass joins.
type planStep struct {
	node  *treeNode
	grant int64 // iterations to request (0 when the budget wall was hit)
	index int   // post-order position within the pass
	// searchesAfter is the sequential Result.Searches value at the
	// moment this step completes (counting the leaf creations that
	// precede it in post-order).
	searchesAfter int
	// terminal marks the step at which the sequential pass ends with
	// an exhausted budget; its post-run swap must not be applied.
	terminal bool

	s       search.Search // the search actually stepped
	used    int64
	done    bool
	skipped bool
}

// execNode mirrors one doubling-tree node for a single pass: the
// child tasks to run (and then swap into this node, in order) before
// the node's own step.
type execNode struct {
	node *treeNode
	kids []*execNode
	step *planStep // nil when the pass's budget ran out before this visit
}

// treeExec carries the state of one concurrent strategy execution.
type treeExec struct {
	cfg     *Tree
	factory search.Factory
	ctx     context.Context
	budget  int64

	// Planner state (single goroutine).
	planned  int64 // iterations scheduled so far == sequential res.Iterations
	searches int   // factory calls so far == sequential res.Searches
	stopped  bool  // the current pass hit the budget wall

	// Executor state.
	sem     chan struct{} // bounded worker pool: one slot per Step call
	minDone atomic.Int64  // earliest post-order index observed finished
	pool    atomic.Int64  // unclaimed budget (telemetry; grants are claimed from it)
	spent   atomic.Int64  // iterations consumed by executed steps
	steps   atomic.Int64
	skipped atomic.Int64
	swaps   atomic.Int64
	busy    atomic.Int64 // cumulative Step nanoseconds across workers
}

// runConcurrent executes the tree strategy on a bounded worker pool.
// Called from Tree.RunContext when Workers > 1. Cancellation is
// observed at step dispatch (pending steps are skipped) and inside
// in-flight steps (chunked stepping); a cancelled execution settles
// with exact spent-iteration accounting instead of the planner's
// totals.
func (t *Tree) runConcurrent(ctx context.Context, f search.Factory, budget int64) Result {
	workers := t.Workers
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &treeExec{
		cfg:     t,
		factory: f,
		ctx:     ctx,
		budget:  budget,
		sem:     make(chan struct{}, workers),
	}
	e.minDone.Store(math.MaxInt64)
	e.pool.Store(budget)
	start := time.Now()

	var res Result
	passes := 0

	// The initial tree is a single 1-labeled node run for t0; treat it
	// as a one-step pass.
	passes++
	e.notePass(passes)
	root := e.newLeaf()
	var steps []*planStep
	rootTask := &execNode{node: root}
	rootTask.step = e.planStep(root, 1, &steps)
	e.execSubtree(rootTask)
	finished := e.settle(steps, 0, &res)

	// Doubling passes until the budget is exhausted, a search
	// finishes, or the context is cancelled. Each pass is planned in
	// full (deterministically, on this goroutine), then executed
	// concurrently, then settled.
	for !finished && e.planned < e.budget && ctx.Err() == nil {
		e.stopped = false
		prev := e.planned
		passes++
		e.notePass(passes)
		var passSteps []*planStep
		task := e.planPass(root, &passSteps)
		e.execSubtree(task)
		finished = e.settle(passSteps, prev, &res)
	}
	if !res.Solved && !res.Cancelled && ctx.Err() != nil {
		// Cancelled between passes: the last settled pass ran to
		// completion, so its accounting stands; only flag the outcome.
		res.Cancelled = true
	}

	wall := time.Since(start)
	stats := &ExecStats{
		Workers:        workers,
		Passes:         passes,
		SearchesLive:   e.searches,
		Steps:          e.steps.Load(),
		Skipped:        e.skipped.Load(),
		BudgetSpent:    e.spent.Load(),
		BudgetStranded: budget - e.spent.Load(),
		Speculated:     e.spent.Load() - res.Iterations,
		Swaps:          e.swaps.Load(),
	}
	if stats.BudgetStranded < 0 {
		stats.BudgetStranded = 0
	}
	if wall > 0 {
		stats.Utilization = float64(e.busy.Load()) / (float64(wall) * float64(workers))
	}
	res.Exec = stats
	if h := t.Obs; h != nil {
		// Split the executor's spend into the iterations the sequential
		// oracle would have run (the Result's count) and pure
		// speculation past the winning step.
		h.UsefulIters.Add(float64(res.Iterations))
		if stats.Speculated > 0 {
			h.SpeculatedIters.Add(float64(stats.Speculated))
		}
	}
	return res
}

// notePass mirrors treeRun.notePass for the concurrent executor; it
// runs on the planning goroutine between passes.
func (e *treeExec) notePass(pass int) {
	h := e.cfg.Obs
	if h == nil {
		return
	}
	h.Passes.Inc()
	if h.Tracer != nil {
		h.Tracer.Emit("tree_pass", map[string]any{
			"strategy": e.cfg.Name(), "pass": pass,
			"searches": e.searches, "iterations": e.planned,
		})
	}
}

// newLeaf mirrors treeRun.newLeaf: factory ids are assigned in
// traversal order, which the planner visits exactly as the sequential
// oracle does. The restart_fire events are emitted here, on the
// single planning goroutine, so their order in the trace matches the
// sequential schedule.
func (e *treeExec) newLeaf() *treeNode {
	s := e.factory(uint64(e.searches))
	e.searches++
	if h := e.cfg.Obs; h != nil {
		h.Restarts.Inc()
		if h.Tracer != nil {
			h.Tracer.Emit("restart_fire", map[string]any{
				"strategy": e.cfg.Name(), "search": uint64(e.searches - 1), "cutoff": e.cfg.T0,
			})
		}
	}
	// Unreachable in practice — RunContext routes EqSat runs to the
	// sequential executor — but kept so a future lifting of that guard
	// cannot silently drop seed accounting.
	seedDedup(e.cfg, s, uint64(e.searches-1))
	return &treeNode{label: 1, s: s}
}

// planStep schedules one Step call, mirroring treeRun.run's budget
// arithmetic: the grant is clipped to the remaining budget, and a
// clipped (or zero) grant ends the pass.
func (e *treeExec) planStep(n *treeNode, units int64, steps *[]*planStep) *planStep {
	iters := units * e.cfg.T0
	if remaining := e.budget - e.planned; iters >= remaining {
		iters = remaining
		e.stopped = true
	}
	if iters < 0 {
		iters = 0
	}
	if h := e.cfg.Obs; h != nil && iters > 0 {
		h.CutoffIters.Observe(float64(iters))
	}
	e.planned += iters
	st := &planStep{
		node:          n,
		grant:         iters,
		index:         len(*steps),
		searchesAfter: e.searches,
		terminal:      e.stopped,
	}
	*steps = append(*steps, st)
	return st
}

// planPass builds the execution DAG for one doubling pass over the
// subtree rooted at n, mirroring treeRun.visit: pre-existing leaves
// sprout up to two fresh 1-labeled leaves (stopping at the search
// cap), children are visited in order, and the node itself then runs
// for label*t0 and doubles its label. Planning stops at the budget
// wall exactly where the sequential traversal would unwind.
func (e *treeExec) planPass(n *treeNode, steps *[]*planStep) *execNode {
	en := &execNode{node: n}
	if len(n.children) == 0 {
		for i := 0; i < 2 && !e.stopped; i++ {
			if e.cfg.MaxSearches > 0 && e.searches >= e.cfg.MaxSearches {
				break
			}
			c := e.newLeaf()
			n.children = append(n.children, c)
			kid := &execNode{node: c}
			kid.step = e.planStep(c, 1, steps)
			en.kids = append(en.kids, kid)
		}
	} else {
		for _, c := range n.children {
			if e.stopped {
				break
			}
			en.kids = append(en.kids, e.planPass(c, steps))
		}
	}
	if e.stopped {
		return en // the sequential pass unwinds without running n
	}
	en.step = e.planStep(n, n.label, steps)
	n.label *= 2
	return en
}

// execSubtree runs one pass subtree: child tasks concurrently, then
// their parent swaps in child order at the join point, then the
// node's own step. The WaitGroup join gives the swap reads a
// happens-before edge over every child step.
func (e *treeExec) execSubtree(en *execNode) {
	if len(en.kids) > 0 {
		if rest := en.kids[1:]; len(rest) > 0 {
			var wg sync.WaitGroup
			wg.Add(len(rest))
			for _, k := range rest {
				go func(k *execNode) {
					defer wg.Done()
					e.execSubtree(k)
				}(k)
			}
			e.execSubtree(en.kids[0]) // first child on this goroutine
			wg.Wait()
		} else {
			e.execSubtree(en.kids[0])
		}
		for _, k := range en.kids {
			// A child whose visit did not complete (budget wall) is
			// not swapped, matching the sequential unwind.
			if k.step == nil || k.step.terminal {
				continue
			}
			e.applySwap(k.node, en.node)
		}
	}
	if en.step != nil {
		e.runStep(en.step)
	}
}

// applySwap applies the adaptive rule at a join point; it is always
// invoked by the single goroutine that owns the parent's subtree at
// that moment, so the pointer exchange needs no lock.
func (e *treeExec) applySwap(n, parent *treeNode) {
	if !e.cfg.Adaptive || parent == nil {
		return
	}
	if parent.s.Cost() > n.s.Cost() {
		parent.s, n.s = n.s, parent.s
		e.swaps.Add(1)
		if h := e.cfg.Obs; h != nil {
			h.Swaps.Inc()
			if h.Tracer != nil {
				h.Tracer.Emit("tree_promote", map[string]any{
					"strategy": e.cfg.Name(),
					"cost":     parent.s.Cost(), "displaced": n.s.Cost(),
				})
			}
		}
	}
}

// runStep claims a worker slot and executes one scheduled Step. Steps
// whose post-order index lies beyond an already-finished step are
// skipped: their outcome cannot change the reconstructed Result
// (minDone only ever decreases, so everything at or before the final
// winner always executes with the exact sequential search state).
// Steps pending when the context is cancelled are skipped outright;
// in-flight steps observe the cancellation through chunked stepping.
func (e *treeExec) runStep(st *planStep) {
	if st.grant <= 0 {
		return
	}
	if int64(st.index) > e.minDone.Load() || e.ctx.Err() != nil {
		st.skipped = true
		e.skipped.Add(1)
		return
	}
	e.sem <- struct{}{}
	if int64(st.index) > e.minDone.Load() || e.ctx.Err() != nil { // re-check after the wait
		<-e.sem
		st.skipped = true
		e.skipped.Add(1)
		return
	}
	st.s = st.node.s
	e.pool.Add(-st.grant)
	begin := time.Now()
	used, done, _ := stepCtx(e.ctx, st.s, st.grant)
	e.busy.Add(int64(time.Since(begin)))
	<-e.sem

	st.used, st.done = used, done
	e.steps.Add(1)
	e.spent.Add(used)
	if returned := st.grant - used; returned > 0 {
		e.pool.Add(returned)
	}
	if done {
		for {
			cur := e.minDone.Load()
			if int64(st.index) >= cur || e.minDone.CompareAndSwap(cur, int64(st.index)) {
				break
			}
		}
	}
}

// settle reconstructs the sequential Result for one executed pass and
// reports whether the strategy run is over. prev is the cumulative
// iteration count before the pass.
func (e *treeExec) settle(steps []*planStep, prev int64, res *Result) bool {
	j := e.minDone.Load()
	if cancelled := e.ctx.Err() != nil; cancelled {
		// Cancellation forfeits the bit-identical replay (steps may
		// have been skipped or cut short mid-grant), so report the
		// exact work performed instead of the planner's totals. A
		// solve that raced the cancellation still wins.
		res.Iterations = e.spent.Load()
		res.Searches = e.searches
		if j != math.MaxInt64 {
			win := steps[j]
			res.Solved = true
			res.Winner = win.s
			res.Searches = win.searchesAfter
		} else {
			res.Cancelled = true
		}
		return true
	}
	if j == math.MaxInt64 {
		// No search finished: every scheduled grant was consumed, so
		// the sequential totals are the planner's.
		res.Iterations = e.planned
		res.Searches = e.searches
		return e.planned >= e.budget
	}
	// The earliest finishing step in post-order is where the
	// sequential oracle stops. Steps before it all executed in full
	// (none finished, and the Search contract makes Step consume its
	// whole grant otherwise); the winner contributes its actual used
	// count.
	win := steps[j]
	iters := prev
	for _, st := range steps[:j] {
		iters += st.used
	}
	res.Iterations = iters + win.used
	res.Searches = win.searchesAfter
	res.Solved = true
	res.Winner = win.s
	return true
}
