package restart

import (
	"stochsyn/internal/obs"
)

// NewObsHooks builds the standard restart-strategy metrics on reg for
// one strategy (labelled by its Name) and wires the tracer in. Series
// created (DESIGN.md §8):
//
//	stochsyn_restarts_total{strategy=...}           searches started
//	stochsyn_restart_cutoff_iters{strategy=...}     grant-size histogram
//	stochsyn_tree_swaps_total{strategy=...}         adaptive promotions
//	stochsyn_tree_passes_total{strategy=...}        doubling passes
//	stochsyn_speculated_iterations_total{strategy=...}
//	stochsyn_useful_iterations_total{strategy=...}
//
// Both arguments are nil-safe; with a nil registry the returned hooks
// drop all updates, so callers can attach them unconditionally.
func NewObsHooks(reg *obs.Registry, tracer *obs.Tracer, strategy string) *obs.RestartHooks {
	h := &obs.RestartHooks{
		Restarts:        reg.Counter("stochsyn_restarts_total", "strategy", strategy),
		CutoffIters:     reg.Histogram("stochsyn_restart_cutoff_iters", obs.IterBuckets, "strategy", strategy),
		Swaps:           reg.Counter("stochsyn_tree_swaps_total", "strategy", strategy),
		Passes:          reg.Counter("stochsyn_tree_passes_total", "strategy", strategy),
		SpeculatedIters: reg.Counter("stochsyn_speculated_iterations_total", "strategy", strategy),
		UsefulIters:     reg.Counter("stochsyn_useful_iterations_total", "strategy", strategy),
		Tracer:          tracer,
	}
	reg.SetHelp("stochsyn_restarts_total", "Searches started by a restart strategy (the first search counts).")
	reg.SetHelp("stochsyn_restart_cutoff_iters", "Iteration grants handed to searches: cutoffs for sequential strategies, per-visit grants for the tree.")
	reg.SetHelp("stochsyn_tree_swaps_total", "Adaptive tree promotions (lower-cost search swapped toward the root).")
	reg.SetHelp("stochsyn_tree_passes_total", "Doubling passes executed by the tree strategies.")
	reg.SetHelp("stochsyn_speculated_iterations_total", "Concurrent-executor iterations the sequential oracle would not have run.")
	reg.SetHelp("stochsyn_useful_iterations_total", "Iterations counted in strategy Results (the paper's synthesis-time unit).")
	return h
}

// Instrument returns a copy of s with the observability hooks
// attached. Strategies the function does not recognize (external
// Strategy implementations) are returned unchanged; a nil h returns s
// as-is. The original strategy value is never mutated, so a shared
// strategy (e.g. from a table) can be instrumented per run.
func Instrument(s Strategy, h *obs.RestartHooks) Strategy {
	if h == nil {
		return s
	}
	switch t := s.(type) {
	case Naive:
		t.Obs = h
		return t
	case *Naive:
		c := *t
		c.Obs = h
		return &c
	case *Sequential:
		c := *t
		c.Obs = h
		return &c
	case *Tree:
		c := *t
		c.Obs = h
		return &c
	}
	return s
}

// fire records one search start against the hooks: the restart
// counter, the grant-size histogram, and a restart_fire trace event.
// Nil-safe on every level, and never touches search state, so
// instrumented strategies remain bit-identical.
func fire(h *obs.RestartHooks, strategy string, searchID uint64, cutoff int64) {
	if h == nil {
		return
	}
	h.Restarts.Inc()
	h.CutoffIters.Observe(float64(cutoff))
	if h.Tracer != nil {
		h.Tracer.Emit("restart_fire", map[string]any{
			"strategy": strategy, "search": searchID, "cutoff": cutoff,
		})
	}
}
