#!/bin/sh
# fleet_smoke.sh boots a 1-coordinator / 2-worker synthd fleet on
# ephemeral ports and drives it end to end:
#
#   1. a SyGuS job through `synth -remote` pointed at the coordinator
#      (sharded forwarding) solves;
#   2. an exact resubmission is served from the owning worker's cache;
#   3. a long-running job's worker is killed mid-run and the
#      coordinator re-dispatches it to the survivor — same job id, no
#      hang, full result;
#   4. a fresh submission after the kill still solves (submit-side
#      failover) and the fleet metrics/stats are live.
#
# Run via `make fleet-smoke` (part of `make ci`).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=
cleanup() {
	for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
	echo "fleet-smoke: $*" >&2
	for log in "$tmp"/*.log; do
		echo "--- $log" >&2
		cat "$log" >&2
	done
	exit 1
}

$GO build -o "$tmp/synthd" ./cmd/synthd
$GO build -o "$tmp/synth" ./cmd/synth

# boot LOGFILE ARGS... starts a synthd, appends its pid to $pids, and
# sets $addr/$pid from the "listening on" line.
boot() {
	log=$1
	shift
	"$tmp/synthd" "$@" > "$log" 2>&1 &
	pid=$!
	pids="$pids $pid"
	addr=
	i=0
	while [ $i -lt 100 ]; do
		addr=$(sed -n 's/^synthd: listening on //p' "$log" | head -n 1)
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || break
		i=$((i + 1))
		sleep 0.1
	done
	[ -n "$addr" ] || fail "synthd did not start ($log)"
}

boot "$tmp/w0.log" -addr 127.0.0.1:0 -workers 2
w0_addr=$addr w0_pid=$pid
boot "$tmp/w1.log" -addr 127.0.0.1:0 -workers 2
w1_addr=$addr w1_pid=$pid
boot "$tmp/coord.log" -addr 127.0.0.1:0 -fleet "http://$w0_addr,http://$w1_addr"
coord=$addr

cat > "$tmp/xor.sl" <<'EOF'
(set-logic BV)
(synth-fun f ((x (_ BitVec 64)) (y (_ BitVec 64))) (_ BitVec 64))
(constraint (= (f #x0000000000000001 #x0000000000000003) #x0000000000000002))
(constraint (= (f #x000000000000000f #x0000000000000005) #x000000000000000a))
(constraint (= (f #x0000000000000000 #x0000000000000000) #x0000000000000000))
(constraint (= (f #xffffffffffffffff #x0000000000000000) #xffffffffffffffff))
(constraint (= (f #x00000000000000ff #x00000000000000f0) #x000000000000000f))
(constraint (= (f #x0123456789abcdef #x0000000000000000) #x0123456789abcdef))
(check-synth)
EOF

# 1. Solve through the coordinator.
out=$("$tmp/synth" -remote "http://$coord" -sl "$tmp/xor.sl" -budget 8000000 -v)
echo "$out"
case "$out" in
*"solved in"*) ;;
*) fail "expected a solved response through the coordinator" ;;
esac

# 2. Exact resubmission: the same shard serves it from its cache.
"$tmp/synth" -remote "http://$coord" -sl "$tmp/xor.sl" -budget 8000000 > /dev/null ||
	fail "resubmission through the coordinator failed"
curl -sf "http://$coord/tracez?n=50" | grep -q '"fleet_forward"' ||
	fail "coordinator trace has no fleet_forward events"

# 3. Kill the worker a long job runs on; the coordinator must
# re-dispatch to the survivor under the same id.
cat > "$tmp/job.json" <<'EOF'
{
  "problem": {
    "expr": "subq(xorq(mull(x, x), shrq(x, 9)), orq(x, 0x5bd1e995))",
    "inputs": 1, "num_cases": 50, "case_seed": 3
  },
  "options": {"budget": 8000000, "seed": 7, "workers": 8}
}
EOF
resp=$(curl -sf -X POST --data-binary @"$tmp/job.json" "http://$coord/v1/jobs") ||
	fail "long-job submission failed"
id=$(printf '%s\n' "$resp" | sed -n 's/^ *"id": "\([^"]*\)".*/\1/p' | head -n 1)
shard=$(printf '%s\n' "$resp" | sed -n 's/^ *"worker": "\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$id" ] && [ -n "$shard" ] || fail "submission response lacked id/worker: $resp"

i=0
while [ $i -lt 100 ]; do
	status=$(curl -sf "http://$coord/v1/jobs/$id" |
		sed -n 's/^ *"status": "\([^"]*\)".*/\1/p' | head -n 1)
	[ "$status" = running ] && break
	[ "$status" = completed ] && fail "long job completed before the kill; raise its budget"
	i=$((i + 1))
	sleep 0.1
done
[ "$status" = running ] || fail "long job never started running (status: $status)"

# Attach a live event stream through the coordinator BEFORE the kill:
# the one connection must survive the failover, carrying events from
# both workers and exactly one terminal event.
curl -sN --max-time 180 "http://$coord/v1/jobs/$id/events" > "$tmp/stream" &
stream_pid=$!
pids="$pids $stream_pid"
i=0
while [ $i -lt 100 ]; do
	grep -q "\"worker\":\"$shard\"" "$tmp/stream" 2>/dev/null && break
	i=$((i + 1))
	sleep 0.1
done
grep -q "\"worker\":\"$shard\"" "$tmp/stream" ||
	fail "no events from the owning worker arrived on the stream"

case "$shard" in
w0) kill -9 "$w0_pid" ;;
w1) kill -9 "$w1_pid" ;;
*) fail "unknown shard $shard" ;;
esac
echo "fleet-smoke: killed $shard mid-run"

i=0
final=
while [ $i -lt 240 ]; do
	final=$(curl -sf "http://$coord/v1/jobs/$id" || true)
	status=$(printf '%s\n' "$final" | sed -n 's/^ *"status": "\([^"]*\)".*/\1/p' | head -n 1)
	[ "$status" = completed ] && break
	case "$status" in failed | cancelled) fail "re-dispatched job ended $status: $final" ;; esac
	i=$((i + 1))
	sleep 0.5
done
[ "$status" = completed ] || fail "re-dispatched job did not complete (status: $status)"
printf '%s\n' "$final" | grep -q '"iterations": 8000000' ||
	fail "re-dispatched job did not run its full budget: $final"
new_shard=$(printf '%s\n' "$final" | sed -n 's/^ *"worker": "\([^"]*\)".*/\1/p' | head -n 1)
[ "$new_shard" != "$shard" ] || fail "job still attributed to the dead worker"
curl -sf "http://$coord/statsz" | grep -q '"redispatches": 1' ||
	fail "coordinator statsz does not show the re-dispatch"
echo "fleet-smoke: $shard died, job re-dispatched to $new_shard and completed"

# The stream attached before the kill must have re-attached to the
# survivor and terminated itself on the (single) terminal event.
wait "$stream_pid" 2>/dev/null || true
grep -q "\"worker\":\"$shard\"" "$tmp/stream" ||
	fail "stream lost the pre-kill events from $shard"
grep -q "\"worker\":\"$new_shard\"" "$tmp/stream" ||
	fail "stream carried no events from the survivor $new_shard after redispatch"
finishes=$(grep -c '^event: job_finished$' "$tmp/stream" || true)
[ "$finishes" = 1 ] ||
	fail "stream saw $finishes terminal events across the failover, want exactly 1"
echo "fleet-smoke: event stream survived the failover ($shard -> $new_shard, one terminal event)"

# 4. New work still solves on the surviving worker, and the fleet
# series are exported.
out=$("$tmp/synth" -remote "http://$coord" -expr 'andq(x, y)' -inputs 2 -budget 8000000 -v)
case "$out" in
*"solved in"*) ;;
*) fail "post-kill submission did not solve: $out" ;;
esac
curl -sf "http://$coord/metrics" > "$tmp/metrics" || fail "GET /metrics failed"
for series in \
	stochsyn_fleet_forwards_total \
	stochsyn_fleet_redispatches_total \
	stochsyn_fleet_worker_healthy; do
	grep -q "^$series" "$tmp/metrics" || fail "/metrics is missing $series"
done

echo "fleet-smoke: OK"
