#!/bin/sh
# server_smoke.sh boots synthd on an ephemeral port, submits a small
# SyGuS job through `synth -remote`, checks the server solves it, and
# scrapes /metrics to confirm the observability endpoints are live.
# Run via `make server-smoke`.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

cat > "$tmp/xor.sl" <<'EOF'
(set-logic BV)
(synth-fun f ((x (_ BitVec 64)) (y (_ BitVec 64))) (_ BitVec 64))
(constraint (= (f #x0000000000000001 #x0000000000000003) #x0000000000000002))
(constraint (= (f #x000000000000000f #x0000000000000005) #x000000000000000a))
(constraint (= (f #x0000000000000000 #x0000000000000000) #x0000000000000000))
(constraint (= (f #xffffffffffffffff #x0000000000000000) #xffffffffffffffff))
(constraint (= (f #x00000000000000ff #x00000000000000f0) #x000000000000000f))
(constraint (= (f #x0123456789abcdef #x0000000000000000) #x0123456789abcdef))
(check-synth)
EOF

$GO build -o "$tmp/synthd" ./cmd/synthd
$GO build -o "$tmp/synth" ./cmd/synth

"$tmp/synthd" -addr 127.0.0.1:0 -workers 2 > "$tmp/synthd.log" 2>&1 &
pid=$!

# The daemon prints "synthd: listening on <addr>" once bound.
addr=
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's/^synthd: listening on //p' "$tmp/synthd.log" | head -n 1)
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "server-smoke: synthd did not start" >&2
	cat "$tmp/synthd.log" >&2
	exit 1
fi

out=$("$tmp/synth" -remote "http://$addr" -sl "$tmp/xor.sl" -budget 8000000 -v)
echo "$out"
case "$out" in
*"solved in"*) ;;
*)
	echo "server-smoke: expected a solved response from the server" >&2
	exit 1
	;;
esac

# The job above ran real searches, so the scrape must carry the core
# series with non-empty sample lines (name[{labels}] value).
curl -sf "http://$addr/metrics" > "$tmp/metrics" || {
	echo "server-smoke: GET /metrics failed" >&2
	exit 1
}
[ -s "$tmp/metrics" ] || { echo "server-smoke: /metrics is empty" >&2; exit 1; }
for series in \
	stochsyn_search_iterations_total \
	stochsyn_restarts_total \
	stochsyn_job_run_seconds_count \
	stochsyn_jobs_submitted_total \
	go_goroutines; do
	grep -q "^$series" "$tmp/metrics" || {
		echo "server-smoke: /metrics is missing $series" >&2
		cat "$tmp/metrics" >&2
		exit 1
	}
done
if grep -vE '^(# (HELP|TYPE) )|^[a-zA-Z_:][a-zA-Z0-9_:]*({.*})? [^ ]+$' "$tmp/metrics" | grep -q .; then
	echo "server-smoke: /metrics contains malformed lines:" >&2
	grep -vE '^(# (HELP|TYPE) )|^[a-zA-Z_:][a-zA-Z0-9_:]*({.*})? [^ ]+$' "$tmp/metrics" >&2
	exit 1
fi
curl -sf "http://$addr/tracez?n=5" | grep -q '"event"' || {
	echo "server-smoke: /tracez returned no events" >&2
	exit 1
}
echo "server-smoke: /metrics and /tracez OK"

# The live telemetry stream: submit a job and consume its SSE feed.
# The server ends the stream at the terminal event, so curl exits on
# its own; the feed must carry the lifecycle and exactly one
# job_finished.
cat > "$tmp/job.json" <<'EOF'
{
  "problem": {"expr": "xorq(x, y)", "inputs": 2, "num_cases": 40, "case_seed": 11},
  "options": {"budget": 4000000, "seed": 5, "workers": 2}
}
EOF
resp=$(curl -sf -X POST --data-binary @"$tmp/job.json" "http://$addr/v1/jobs") || {
	echo "server-smoke: event-stream job submission failed" >&2
	exit 1
}
id=$(printf '%s\n' "$resp" | sed -n 's/^ *"id": "\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$id" ] || { echo "server-smoke: submission response lacked an id: $resp" >&2; exit 1; }
curl -sN --max-time 120 "http://$addr/v1/jobs/$id/events" > "$tmp/stream" || {
	echo "server-smoke: SSE stream failed or did not terminate" >&2
	exit 1
}
for ev in job_started search_start job_finished; do
	grep -q "^event: $ev\$" "$tmp/stream" || {
		echo "server-smoke: event stream is missing $ev:" >&2
		cat "$tmp/stream" >&2
		exit 1
	}
done
finishes=$(grep -c '^event: job_finished$' "$tmp/stream")
[ "$finishes" = 1 ] || {
	echo "server-smoke: expected exactly one terminal event, got $finishes" >&2
	exit 1
}
tail -n 3 "$tmp/stream" | grep -q '^event: job_finished$' || {
	echo "server-smoke: stream did not end on the terminal event" >&2
	cat "$tmp/stream" >&2
	exit 1
}
echo "server-smoke: /v1/jobs/$id/events streamed and terminated OK"

kill -TERM "$pid"
wait "$pid" 2>/dev/null || true
pid=
echo "server-smoke: OK"
